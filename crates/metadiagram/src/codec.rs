//! Binary encode/decode of the delta-count store and its catalog types.
//!
//! A [`DeltaCatalogCounts`] is the whole counting state of an alignment
//! session: the merged anchor matrix, every materialized count matrix with
//! its maintained [`sparsela::MarginSums`], the `L`/`R` factor chains that
//! make anchor updates incremental, and the work counters. This module
//! lays all of it out as bytes (on top of [`sparsela::codec`] and the
//! vendored [`serde::bin`] primitives) so `session::snapshot` can persist
//! a `Counted` stage and a fresh process can resume `update_anchors`
//! without recounting — see `docs/SNAPSHOT_FORMAT.md` for the file-level
//! framing around this payload.
//!
//! **What is stored vs recomputed.** Each anchor chain stores `L` and `R`
//! only; the cached transpose `Lᵀ` is recomputed on decode
//! ([`sparsela::CsrMatrix::transpose`] is exact and deterministic, and the
//! transpose is a third of every chain's bytes). Everything else decodes
//! bit-identically from the stream.
//!
//! **Decode-time validation.** Checksums upstream catch bit-rot; this
//! layer rejects *semantically* broken payloads, whatever their origin:
//! every CSR re-validates its structural invariants, stack nodes may only
//! reference earlier nodes (the dependency order a propagation pass relies
//! on), node kinds must agree with their diagram shapes, factor shapes
//! must compose with the anchor matrix, stored margins must match their
//! count matrix bit-for-bit, and the catalog mapping must agree with the
//! catalog rebuilt from the stored [`FeatureSet`]. A payload that fails
//! any check is refused with a typed error — never opened approximately.

use crate::catalog::{Catalog, FeatureSet};
use crate::delta::{DeltaCatalogCounts, DeltaStats, FactorChain, NodeKind};
use crate::diagram::{AttrPathId, Diagram, SocialPathId};
use serde::bin::{Error, Reader, Writer};
use sparsela::codec::{
    csr_encoded_len, decode_csr, decode_margins, decode_threading, encode_csr, encode_margins,
    encode_threading, margins_encoded_len,
};
use sparsela::Threading;

/// Hostile input could nest `Diagram::Stack` arbitrarily deep; the paper's
/// catalog never exceeds depth 3, so anything past this bound is refused
/// before the recursive decoder can overflow the stack.
const MAX_DIAGRAM_DEPTH: usize = 16;

fn feature_set_tag(set: FeatureSet) -> u8 {
    match set {
        FeatureSet::MetaPathsOnly => 0,
        FeatureSet::PathsAndSocialDiagrams => 1,
        FeatureSet::PathsAndAttrDiagram => 2,
        FeatureSet::Full => 3,
        FeatureSet::FullWithWords => 4,
    }
}

/// Encodes a [`FeatureSet`] as a one-byte tag.
pub fn encode_feature_set(set: FeatureSet, w: &mut Writer) {
    w.u8(feature_set_tag(set));
}

/// Decodes a [`FeatureSet`] tag.
///
/// # Errors
/// [`Error::Malformed`] on an unknown tag; EOF errors on truncated input.
pub fn decode_feature_set(r: &mut Reader<'_>) -> Result<FeatureSet, Error> {
    match r.u8()? {
        0 => Ok(FeatureSet::MetaPathsOnly),
        1 => Ok(FeatureSet::PathsAndSocialDiagrams),
        2 => Ok(FeatureSet::PathsAndAttrDiagram),
        3 => Ok(FeatureSet::Full),
        4 => Ok(FeatureSet::FullWithWords),
        tag => Err(Error::Malformed(format!("feature set: unknown tag {tag}"))),
    }
}

fn social_tag(p: SocialPathId) -> u8 {
    match p {
        SocialPathId::P1 => 0,
        SocialPathId::P2 => 1,
        SocialPathId::P3 => 2,
        SocialPathId::P4 => 3,
    }
}

fn social_from_tag(tag: u8) -> Result<SocialPathId, Error> {
    match tag {
        0 => Ok(SocialPathId::P1),
        1 => Ok(SocialPathId::P2),
        2 => Ok(SocialPathId::P3),
        3 => Ok(SocialPathId::P4),
        _ => Err(Error::Malformed(format!("social path: unknown tag {tag}"))),
    }
}

fn attr_tag(a: AttrPathId) -> u8 {
    match a {
        AttrPathId::Timestamp => 0,
        AttrPathId::Location => 1,
        AttrPathId::Word => 2,
    }
}

fn attr_from_tag(tag: u8) -> Result<AttrPathId, Error> {
    match tag {
        0 => Ok(AttrPathId::Timestamp),
        1 => Ok(AttrPathId::Location),
        2 => Ok(AttrPathId::Word),
        _ => Err(Error::Malformed(format!("attr path: unknown tag {tag}"))),
    }
}

const DIAGRAM_SOCIAL: u8 = 0;
const DIAGRAM_ATTR: u8 = 1;
const DIAGRAM_SOCIAL_PAIR: u8 = 2;
const DIAGRAM_ATTR_PAIR: u8 = 3;
const DIAGRAM_STACK: u8 = 4;

/// Encodes a [`Diagram`] recursively (tag byte per node).
pub fn encode_diagram(d: &Diagram, w: &mut Writer) {
    match d {
        Diagram::Social(p) => {
            w.u8(DIAGRAM_SOCIAL);
            w.u8(social_tag(*p));
        }
        Diagram::Attr(a) => {
            w.u8(DIAGRAM_ATTR);
            w.u8(attr_tag(*a));
        }
        Diagram::SocialPair(a, b) => {
            w.u8(DIAGRAM_SOCIAL_PAIR);
            w.u8(social_tag(*a));
            w.u8(social_tag(*b));
        }
        Diagram::AttrPair(a, b) => {
            w.u8(DIAGRAM_ATTR_PAIR);
            w.u8(attr_tag(*a));
            w.u8(attr_tag(*b));
        }
        Diagram::Stack(parts) => {
            w.u8(DIAGRAM_STACK);
            w.usize(parts.len());
            for p in parts {
                encode_diagram(p, w);
            }
        }
    }
}

/// Decodes a [`Diagram`], refusing nesting deeper than the catalog could
/// ever produce.
///
/// # Errors
/// [`Error::Malformed`] on unknown tags or excessive nesting; EOF errors
/// on truncated input.
pub fn decode_diagram(r: &mut Reader<'_>) -> Result<Diagram, Error> {
    decode_diagram_at(r, 0)
}

fn decode_diagram_at(r: &mut Reader<'_>, depth: usize) -> Result<Diagram, Error> {
    if depth > MAX_DIAGRAM_DEPTH {
        return Err(Error::Malformed(format!(
            "diagram nested deeper than {MAX_DIAGRAM_DEPTH}"
        )));
    }
    match r.u8()? {
        DIAGRAM_SOCIAL => Ok(Diagram::Social(social_from_tag(r.u8()?)?)),
        DIAGRAM_ATTR => Ok(Diagram::Attr(attr_from_tag(r.u8()?)?)),
        DIAGRAM_SOCIAL_PAIR => Ok(Diagram::SocialPair(
            social_from_tag(r.u8()?)?,
            social_from_tag(r.u8()?)?,
        )),
        DIAGRAM_ATTR_PAIR => Ok(Diagram::AttrPair(
            attr_from_tag(r.u8()?)?,
            attr_from_tag(r.u8()?)?,
        )),
        DIAGRAM_STACK => {
            // Each part is ≥ 2 bytes (tag + payload).
            let len = r.seq_len(2)?;
            let mut parts = Vec::with_capacity(len);
            for _ in 0..len {
                parts.push(decode_diagram_at(r, depth + 1)?);
            }
            Ok(Diagram::Stack(parts))
        }
        tag => Err(Error::Malformed(format!("diagram: unknown tag {tag}"))),
    }
}

const NODE_ANCHOR_FREE: u8 = 0;
const NODE_ANCHOR_CHAIN: u8 = 1;
const NODE_STACK: u8 = 2;

fn encode_stats(stats: &DeltaStats, w: &mut Writer) {
    w.usize(stats.full_counts);
    w.usize(stats.delta_updates);
    w.usize(stats.anchors_applied);
}

fn decode_stats(r: &mut Reader<'_>) -> Result<DeltaStats, Error> {
    Ok(DeltaStats {
        full_counts: r.usize()?,
        delta_updates: r.usize()?,
        anchors_applied: r.usize()?,
    })
}

/// Encodes the whole store: anchor matrix, materialized nodes in
/// dependency order (diagram, kind, count, margins each), the catalog
/// mapping, the threading knob, and the work counters.
pub fn encode_store(store: &DeltaCatalogCounts, w: &mut Writer) {
    encode_csr(&store.anchor, w);
    w.usize(store.order.len());
    for i in 0..store.order.len() {
        encode_diagram(&store.order[i], w);
        match &store.kinds[i] {
            NodeKind::AnchorFree => w.u8(NODE_ANCHOR_FREE),
            NodeKind::AnchorChain(chain) => {
                w.u8(NODE_ANCHOR_CHAIN);
                encode_csr(&chain.l, w);
                encode_csr(&chain.r, w);
            }
            NodeKind::Stack(parts) => {
                w.u8(NODE_STACK);
                w.usize_slice(parts);
            }
        }
        encode_csr(&store.counts[i], w);
        encode_margins(&store.sums[i], w);
    }
    w.usize_slice(&store.catalog_pos);
    encode_threading(store.threading, w);
    encode_stats(&store.stats, w);
}

fn diagram_encoded_len(d: &Diagram) -> usize {
    match d {
        Diagram::Social(_) | Diagram::Attr(_) => 2,
        Diagram::SocialPair(_, _) | Diagram::AttrPair(_, _) => 3,
        Diagram::Stack(parts) => 1 + 8 + parts.iter().map(diagram_encoded_len).sum::<usize>(),
    }
}

/// Exact byte length [`encode_store`] will produce for `store` — the
/// snapshot layer pre-sizes its section buffer with this so the encode
/// pass never reallocates (save-side throughput then tracks the bulk
/// slice writes instead of `Vec` growth).
pub fn store_encoded_len(store: &DeltaCatalogCounts) -> usize {
    let mut len = csr_encoded_len(&store.anchor) + 8; // anchor + node count
    for i in 0..store.order.len() {
        len += diagram_encoded_len(&store.order[i]) + 1; // diagram + kind tag
        len += match &store.kinds[i] {
            NodeKind::AnchorFree => 0,
            NodeKind::AnchorChain(chain) => csr_encoded_len(&chain.l) + csr_encoded_len(&chain.r),
            NodeKind::Stack(parts) => 8 + parts.len() * 8,
        };
        len += csr_encoded_len(&store.counts[i]) + margins_encoded_len(&store.sums[i]);
    }
    len += 8 + store.catalog_pos.len() * 8; // catalog mapping
    len += match store.threading {
        Threading::Threads(_) => 1 + 8,
        Threading::Serial | Threading::Auto => 1,
    };
    len + 3 * 8 // stats
}

/// Decodes a store encoded by [`encode_store`] and cross-validates it
/// against `catalog` (the catalog rebuilt from the snapshot's stored
/// [`FeatureSet`]). The result is bit-identical to the encoded store —
/// including the recomputed `Lᵀ` caches — so every subsequent
/// `update_anchors`/recount produces exactly the bytes the never-persisted
/// store would.
///
/// # Errors
/// EOF/length errors on truncated input; [`Error::Malformed`] when any
/// structural or semantic invariant fails (CSR shape, dependency order,
/// kind/diagram agreement, factor composition, margin agreement, catalog
/// mapping).
pub fn decode_store(r: &mut Reader<'_>, catalog: &Catalog) -> Result<DeltaCatalogCounts, Error> {
    let anchor = decode_csr(r)?;
    let (n1, n2) = anchor.shape();
    let n_nodes = r.seq_len(1)?;
    let mut order = Vec::with_capacity(n_nodes);
    let mut kinds = Vec::with_capacity(n_nodes);
    let mut counts = Vec::with_capacity(n_nodes);
    let mut sums = Vec::with_capacity(n_nodes);
    for i in 0..n_nodes {
        let diagram = decode_diagram(r)?;
        let kind = match r.u8()? {
            NODE_ANCHOR_FREE => NodeKind::AnchorFree,
            NODE_ANCHOR_CHAIN => {
                let l = decode_csr(r)?;
                let rr = decode_csr(r)?;
                if l.shape() != (n1, n1) || rr.shape() != (n2, n2) {
                    return Err(Error::Malformed(format!(
                        "node {i}: factor chain shapes {:?}/{:?} do not compose with the \
                         {n1}×{n2} anchor matrix",
                        l.shape(),
                        rr.shape()
                    )));
                }
                NodeKind::AnchorChain(Box::new(FactorChain {
                    lt: l.transpose(),
                    l,
                    r: rr,
                }))
            }
            NODE_STACK => {
                let parts = r.usize_slice()?;
                if parts.is_empty() || parts.iter().any(|&p| p >= i) {
                    return Err(Error::Malformed(format!(
                        "node {i}: stack parts {parts:?} break dependency order"
                    )));
                }
                NodeKind::Stack(parts)
            }
            tag => {
                return Err(Error::Malformed(format!(
                    "node {i}: unknown kind tag {tag}"
                )))
            }
        };
        // The kind is fully determined by the diagram shape (mirrors
        // `CountEngine::anchor_chain_factors`): social paths and social
        // middle-stackings are anchor chains, attribute paths and their
        // middle-stackings are anchor-free, endpoint stackings are
        // stacks whose stored part indices must name exactly the
        // diagram's own parts, in order. A checksum-valid file whose
        // kinds disagree would propagate updates through the wrong
        // nodes — refuse it.
        let agrees = match (&diagram, &kind) {
            (Diagram::Social(_) | Diagram::SocialPair(_, _), NodeKind::AnchorChain(_)) => true,
            (Diagram::Attr(_) | Diagram::AttrPair(_, _), NodeKind::AnchorFree) => true,
            (Diagram::Stack(ds), NodeKind::Stack(parts)) => {
                parts.len() == ds.len()
                    && parts
                        .iter()
                        .zip(ds.iter())
                        .all(|(&p, d)| &order[p] as &Diagram == d)
            }
            _ => false,
        };
        if !agrees {
            return Err(Error::Malformed(format!(
                "node {i}: kind does not match diagram {}",
                diagram.name()
            )));
        }
        let count = decode_csr(r)?;
        if count.shape() != (n1, n2) {
            return Err(Error::Malformed(format!(
                "node {i}: count shape {:?} != anchor shape ({n1}, {n2})",
                count.shape()
            )));
        }
        let margins = decode_margins(r)?;
        if !margins.matches(&count) {
            return Err(Error::Malformed(format!(
                "node {i}: stored margins disagree with the count matrix"
            )));
        }
        order.push(diagram);
        kinds.push(kind);
        counts.push(count);
        sums.push(margins);
    }
    let catalog_pos = r.usize_slice()?;
    if catalog_pos.len() != catalog.len() {
        return Err(Error::Malformed(format!(
            "catalog mapping has {} entries, catalog has {}",
            catalog_pos.len(),
            catalog.len()
        )));
    }
    for (cat, (&pos, entry)) in catalog_pos.iter().zip(catalog.entries()).enumerate() {
        if pos >= order.len() {
            return Err(Error::Malformed(format!(
                "catalog entry {cat} points past the {} materialized nodes",
                order.len()
            )));
        }
        if order[pos] != entry.diagram {
            return Err(Error::Malformed(format!(
                "catalog entry {cat} ({}) maps to node {pos} ({})",
                entry.name,
                order[pos].name()
            )));
        }
    }
    let threading = decode_threading(r)?;
    let stats = decode_stats(r)?;
    Ok(DeltaCatalogCounts {
        anchor,
        order,
        kinds,
        counts,
        sums,
        catalog_pos,
        threading,
        stats,
        // Policy knobs are runtime tuning, not counting state: a restored
        // store starts from the defaults like a freshly built one.
        merge: Default::default(),
        regions: Default::default(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetnet::aligned::anchor_matrix;
    use sparsela::Threading;

    fn store() -> (DeltaCatalogCounts, Catalog) {
        let w = datagen::generate(&datagen::presets::tiny(29));
        let train = w.truth().links()[..10].to_vec();
        let a = anchor_matrix(w.left().n_users(), w.right().n_users(), &train).unwrap();
        let catalog = Catalog::new(FeatureSet::Full);
        let store =
            DeltaCatalogCounts::build(w.left(), w.right(), a, &catalog, Threading::Serial).unwrap();
        (store, catalog)
    }

    fn encoded(store: &DeltaCatalogCounts) -> Vec<u8> {
        let mut w = Writer::new();
        encode_store(store, &mut w);
        w.into_bytes()
    }

    #[test]
    fn feature_sets_round_trip() {
        for set in [
            FeatureSet::MetaPathsOnly,
            FeatureSet::PathsAndSocialDiagrams,
            FeatureSet::PathsAndAttrDiagram,
            FeatureSet::Full,
            FeatureSet::FullWithWords,
        ] {
            let mut w = Writer::new();
            encode_feature_set(set, &mut w);
            let bytes = w.into_bytes();
            assert_eq!(decode_feature_set(&mut Reader::new(&bytes)).unwrap(), set);
        }
        assert!(decode_feature_set(&mut Reader::new(&[99])).is_err());
    }

    #[test]
    fn every_catalog_diagram_round_trips() {
        for entry in Catalog::new(FeatureSet::FullWithWords).entries() {
            let mut w = Writer::new();
            encode_diagram(&entry.diagram, &mut w);
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            assert_eq!(decode_diagram(&mut r).unwrap(), entry.diagram);
            assert!(r.is_exhausted());
        }
    }

    #[test]
    fn hostile_diagram_nesting_is_refused() {
        // A stack-of-stack-of-… chain deeper than MAX_DIAGRAM_DEPTH.
        let mut w = Writer::new();
        for _ in 0..(MAX_DIAGRAM_DEPTH + 2) {
            w.u8(DIAGRAM_STACK);
            w.usize(1);
        }
        w.u8(DIAGRAM_SOCIAL);
        w.u8(0);
        let bytes = w.into_bytes();
        assert!(matches!(
            decode_diagram(&mut Reader::new(&bytes)),
            Err(Error::Malformed(_))
        ));
    }

    #[test]
    fn store_round_trips_bit_identically() {
        let (store, catalog) = store();
        let bytes = encoded(&store);
        let mut r = Reader::new(&bytes);
        let back = decode_store(&mut r, &catalog).unwrap();
        assert!(r.is_exhausted());
        assert_eq!(back.anchor, store.anchor);
        assert_eq!(back.order, store.order);
        assert_eq!(back.catalog_pos, store.catalog_pos);
        assert_eq!(back.threading, store.threading);
        assert_eq!(back.stats, store.stats);
        for i in 0..store.order.len() {
            assert_eq!(back.counts[i], store.counts[i], "count {i}");
            assert_eq!(back.sums[i], store.sums[i], "margins {i}");
            match (&back.kinds[i], &store.kinds[i]) {
                (NodeKind::AnchorFree, NodeKind::AnchorFree) => {}
                (NodeKind::Stack(a), NodeKind::Stack(b)) => assert_eq!(a, b),
                (NodeKind::AnchorChain(a), NodeKind::AnchorChain(b)) => {
                    assert_eq!(a.l, b.l);
                    assert_eq!(a.r, b.r);
                    assert_eq!(a.lt, b.lt, "recomputed transpose diverged");
                }
                _ => panic!("node {i}: kind changed across the round trip"),
            }
        }
    }

    #[test]
    fn store_encoded_len_is_exact() {
        let (store, _) = store();
        let mut w = Writer::new();
        encode_store(&store, &mut w);
        assert_eq!(w.len(), store_encoded_len(&store));
    }

    #[test]
    fn reopened_store_resumes_updates_bit_equal() {
        let w = datagen::generate(&datagen::presets::tiny(31));
        let train = w.truth().links()[..8].to_vec();
        let extra = w.truth().links()[8..18].to_vec();
        let a = anchor_matrix(w.left().n_users(), w.right().n_users(), &train).unwrap();
        let catalog = Catalog::new(FeatureSet::Full);
        let mut live =
            DeltaCatalogCounts::build(w.left(), w.right(), a, &catalog, Threading::Serial).unwrap();
        let bytes = encoded(&live);
        let mut reopened = decode_store(&mut Reader::new(&bytes), &catalog).unwrap();
        let o1 = live.update_anchors(&extra).unwrap();
        let o2 = reopened.update_anchors(&extra).unwrap();
        assert_eq!(o1, o2);
        for i in 0..catalog.len() {
            assert_eq!(live.catalog_count(i), reopened.catalog_count(i));
            assert_eq!(live.catalog_sums(i), reopened.catalog_sums(i));
        }
        assert_eq!(live.stats(), reopened.stats());
        assert_eq!(reopened.stats().full_counts, 1, "no recount on reopen");
    }

    #[test]
    fn catalog_mismatch_is_refused() {
        let (store, _) = store();
        let bytes = encoded(&store);
        let wrong = Catalog::new(FeatureSet::MetaPathsOnly);
        assert!(matches!(
            decode_store(&mut Reader::new(&bytes), &wrong),
            Err(Error::Malformed(_))
        ));
    }

    #[test]
    fn truncation_never_mis_opens() {
        let (store, catalog) = store();
        let bytes = encoded(&store);
        // Cuts sampled across the whole payload (every cut would be slow:
        // the payload is ~hundreds of KB).
        let step = (bytes.len() / 97).max(1);
        for cut in (0..bytes.len()).step_by(step) {
            let mut r = Reader::new(&bytes[..cut]);
            assert!(decode_store(&mut r, &catalog).is_err(), "cut {cut} opened");
        }
    }

    #[test]
    fn kind_diagram_disagreement_is_refused() {
        // A checksum-valid payload whose node kinds disagree with their
        // diagrams would propagate updates through the wrong nodes; the
        // decoder must refuse it, not open it approximately.
        let (store, catalog) = store();
        // An anchor-dependent diagram tagged AnchorFree: updates to it
        // would be silently skipped.
        let mut broken = store.clone();
        let i = broken
            .order
            .iter()
            .position(|d| matches!(d, Diagram::Social(_)))
            .expect("catalog has social paths");
        broken.kinds[i] = NodeKind::AnchorFree;
        let err = decode_store(&mut Reader::new(&encoded(&broken)), &catalog).unwrap_err();
        assert!(err.to_string().contains("kind does not match"));
        // A stack whose stored part indices name the wrong diagrams.
        let mut broken = store.clone();
        let s = broken
            .kinds
            .iter()
            .position(|k| matches!(k, NodeKind::Stack(p) if p.len() == 2))
            .expect("catalog has two-part stacks");
        if let NodeKind::Stack(parts) = &mut broken.kinds[s] {
            parts.reverse();
        }
        let err = decode_store(&mut Reader::new(&encoded(&broken)), &catalog).unwrap_err();
        assert!(err.to_string().contains("kind does not match"));
    }

    #[test]
    fn margin_corruption_is_refused() {
        let (store, catalog) = store();
        let mut broken = store.clone();
        // Margins drift from their count matrix → decode must refuse.
        let mut bad = broken.sums[0].clone();
        bad = sparsela::MarginSums::from_parts(
            bad.rows().iter().map(|&v| v + 1.0).collect(),
            bad.cols().to_vec(),
        );
        broken.sums[0] = bad;
        let bytes = encoded(&broken);
        let err = decode_store(&mut Reader::new(&bytes), &catalog).unwrap_err();
        assert!(err.to_string().contains("margins"));
    }
}
