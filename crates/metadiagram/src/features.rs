//! Feature-matrix extraction for candidate anchor links.
//!
//! For every catalog entry, the count engine produces the instance count
//! matrix, [`crate::proximity::dice_proximity`] normalizes it, and the
//! candidate pairs gather their scores into a dense row — one row per
//! candidate anchor link, one column per meta diagram. This matrix (plus a
//! bias column added by the model layer) is the `X` of the paper's joint
//! objective.
//!
//! Extraction parallelizes on two axes, both controlled by a
//! [`Threading`] knob and both **bit-identical** to the serial path:
//!
//! * **diagram fan-out** — catalog entries are scheduled over the
//!   strict-subset dependency DAG ([`crate::covering::plan_dag`]): a
//!   diagram starts the moment its own covering-set factors are counted,
//!   with no barrier between covering-set size classes, while workers
//!   share the engine's Lemma-2 cache ([`DiagramSchedule::Dag`]; the
//!   pre-DAG level-barrier schedule survives as [`DiagramSchedule::Levels`]
//!   for measurement);
//! * **candidate fan-out** — the gather into the dense feature matrix is
//!   split over contiguous candidate batches.

use crate::catalog::Catalog;
use crate::count::CountEngine;
use crate::covering::{plan_dag, plan_levels, plan_order, run_dag};
use crate::proximity::dice_proximity;
use hetnet::UserId;
use sparsela::{CsrMatrix, DenseMatrix, Threading};

/// How the catalog's diagrams are scheduled over worker threads. Both
/// schedules produce bit-identical matrices at any worker count; they
/// differ only in synchronization cost, which the `dag_vs_levels` bench
/// dimension measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DiagramSchedule {
    /// Dependency-graph scheduling ([`crate::covering::plan_dag`] +
    /// [`crate::covering::run_dag`]): one thread-spawn wave for the whole
    /// catalog, and a diagram becomes ready the moment its own factors are
    /// counted.
    #[default]
    Dag,
    /// The pre-DAG reference: covering-set levels
    /// ([`crate::covering::plan_levels`]) with a thread-spawn wave and a
    /// join barrier per level.
    Levels,
}

/// The extracted feature matrix with column names.
#[derive(Debug, Clone)]
pub struct FeatureMatrix {
    /// `candidates.len() × catalog.len()` dense matrix of proximities.
    pub x: DenseMatrix,
    /// Column names, aligned with `x`'s columns.
    pub names: Vec<String>,
}

impl FeatureMatrix {
    /// Number of candidate rows.
    pub fn n_rows(&self) -> usize {
        self.x.nrows()
    }

    /// Number of feature columns.
    pub fn n_features(&self) -> usize {
        self.x.ncols()
    }
}

/// Computes the per-diagram proximity matrices for the whole catalog.
///
/// Evaluation follows [`plan_order`]: diagrams with smaller covering sets
/// first, so endpoint stackings find their factors cached (Lemma 2 reuse).
/// Returns the matrices in *catalog order* regardless of evaluation order.
pub fn proximity_matrices(engine: &CountEngine<'_>, catalog: &Catalog) -> Vec<CsrMatrix> {
    proximity_matrices_par(engine, catalog, Threading::Serial)
}

/// [`proximity_matrices`] with the catalog fanned out over worker threads
/// under the default [`DiagramSchedule::Dag`] schedule. Results are
/// bit-identical to the serial path at any thread count.
pub fn proximity_matrices_par(
    engine: &CountEngine<'_>,
    catalog: &Catalog,
    threading: Threading,
) -> Vec<CsrMatrix> {
    proximity_matrices_sched(engine, catalog, threading, DiagramSchedule::Dag)
}

/// [`proximity_matrices_par`] with an explicit [`DiagramSchedule`]. The
/// schedule changes only synchronization: a diagram's Lemma-2 factors are
/// guaranteed cached before it runs under either (DAG edges are exactly the
/// strict covering subsets; levels conservatively order by set size), and
/// the engine's per-diagram gates make any interleaving produce the same
/// cached counts, so the output is bit-equal across schedules and worker
/// counts.
pub fn proximity_matrices_sched(
    engine: &CountEngine<'_>,
    catalog: &Catalog,
    threading: Threading,
    schedule: DiagramSchedule,
) -> Vec<CsrMatrix> {
    let coverings = catalog.coverings();
    let workers = threading.resolve();
    if workers <= 1 {
        let mut out: Vec<Option<CsrMatrix>> = vec![None; catalog.len()];
        for idx in plan_order(&coverings) {
            let counts = engine.count(&catalog.entries()[idx].diagram);
            out[idx] = Some(dice_proximity(&counts));
        }
        return out
            .into_iter()
            .map(|m| m.expect("every catalog index visited"))
            .collect();
    }
    if schedule == DiagramSchedule::Dag {
        return run_dag(&plan_dag(&coverings), workers, |idx| {
            dice_proximity(&engine.count(&catalog.entries()[idx].diagram))
        });
    }
    let mut out: Vec<Option<CsrMatrix>> = vec![None; catalog.len()];
    for level in plan_levels(&coverings) {
        let per_worker = level.len().div_ceil(workers);
        let batches: Vec<Vec<(usize, CsrMatrix)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = level
                .chunks(per_worker)
                .map(|idxs| {
                    scope.spawn(move || {
                        idxs.iter()
                            .map(|&idx| {
                                let counts = engine.count(&catalog.entries()[idx].diagram);
                                (idx, dice_proximity(&counts))
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("proximity worker panicked"))
                .collect()
        });
        for batch in batches {
            for (idx, prox) in batch {
                out[idx] = Some(prox);
            }
        }
    }
    out.into_iter()
        .map(|m| m.expect("every catalog index visited"))
        .collect()
}

/// Extracts the dense feature matrix for `candidates`.
///
/// Candidates are `(left user, right user)` pairs; rows follow their order.
pub fn extract_features(
    engine: &CountEngine<'_>,
    catalog: &Catalog,
    candidates: &[(UserId, UserId)],
) -> FeatureMatrix {
    extract_features_par(engine, catalog, candidates, Threading::Serial)
}

/// [`extract_features`] with diagram counting *and* the candidate gather
/// fanned out over worker threads. Bit-identical to the serial path.
pub fn extract_features_par(
    engine: &CountEngine<'_>,
    catalog: &Catalog,
    candidates: &[(UserId, UserId)],
    threading: Threading,
) -> FeatureMatrix {
    let proxies = proximity_matrices_par(engine, catalog, threading);
    let names = catalog.names().into_iter().map(String::from).collect();
    gather_features(&proxies, names, candidates, threading)
}

/// Gathers per-candidate feature rows from already-computed proximity
/// matrices (one per feature column, in column order; owned or borrowed —
/// the session's partial column refresh passes `&[&CsrMatrix]`). This is
/// the shared tail of [`extract_features_par`] and of the session API's
/// featurization, so both produce bit-identical matrices by construction.
/// The gather is split over contiguous candidate batches when `threading`
/// allows; results are identical at any worker count.
pub fn gather_features<M>(
    proxies: &[M],
    names: Vec<String>,
    candidates: &[(UserId, UserId)],
    threading: Threading,
) -> FeatureMatrix
where
    M: std::borrow::Borrow<CsrMatrix> + Sync,
{
    assert_eq!(proxies.len(), names.len(), "one proximity per column");
    let ncols = proxies.len();
    let mut x = DenseMatrix::zeros(candidates.len(), ncols);
    let workers = threading.resolve().min(candidates.len()).max(1);
    if workers <= 1 {
        for (col, prox) in proxies.iter().enumerate() {
            for (row, &(l, r)) in candidates.iter().enumerate() {
                let v = prox.borrow().get(l.index(), r.index());
                // srclint: allow(float_eq, reason = "exact sparsity test: skips explicitly-stored zeros, no arithmetic involved")
                if v != 0.0 {
                    x[(row, col)] = v;
                }
            }
        }
    } else {
        // Contiguous candidate batches; each worker fills a private buffer
        // that is copied into the shared matrix after the join.
        let per_worker = candidates.len().div_ceil(workers);
        let blocks: Vec<(usize, Vec<f64>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = candidates
                .chunks(per_worker)
                .enumerate()
                .map(|(block, batch)| {
                    scope.spawn(move || {
                        let mut buf = vec![0f64; batch.len() * ncols];
                        for (col, prox) in proxies.iter().enumerate() {
                            for (row, &(l, r)) in batch.iter().enumerate() {
                                let v = prox.borrow().get(l.index(), r.index());
                                // srclint: allow(float_eq, reason = "exact sparsity test: skips explicitly-stored zeros, no arithmetic involved")
                                if v != 0.0 {
                                    buf[row * ncols + col] = v;
                                }
                            }
                        }
                        (block * per_worker, buf)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("gather worker panicked"))
                .collect()
        });
        for (first_row, buf) in blocks {
            for (i, row_buf) in buf.chunks(ncols).enumerate() {
                x.row_mut(first_row + i).copy_from_slice(row_buf);
            }
        }
    }
    FeatureMatrix { x, names }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::FeatureSet;
    use datagen::presets;
    use hetnet::aligned::anchor_matrix;

    fn setup() -> (datagen::GeneratedWorld, Vec<hetnet::AnchorLink>) {
        let w = datagen::generate(&presets::tiny(21));
        // Use the first half of the anchors as "training" anchors.
        let train: Vec<_> = w.truth().links()[..15].to_vec();
        (w, train)
    }

    #[test]
    fn feature_matrix_shape_and_names() {
        let (w, train) = setup();
        let a = anchor_matrix(w.left().n_users(), w.right().n_users(), &train).unwrap();
        let engine = CountEngine::new(w.left(), w.right(), a).unwrap();
        let catalog = Catalog::new(FeatureSet::Full);
        let candidates: Vec<_> = w
            .truth()
            .iter()
            .map(|l| (l.left, l.right))
            .take(10)
            .collect();
        let fm = extract_features(&engine, &catalog, &candidates);
        assert_eq!(fm.n_rows(), 10);
        assert_eq!(fm.n_features(), 31);
        assert_eq!(fm.names.len(), 31);
        // Every value is a valid Dice proximity.
        for v in fm.x.data() {
            assert!((0.0..=1.0).contains(v), "proximity {v} out of range");
        }
    }

    #[test]
    fn true_pairs_score_higher_than_mismatched_pairs_on_average() {
        let (w, train) = setup();
        let a = anchor_matrix(w.left().n_users(), w.right().n_users(), &train).unwrap();
        let engine = CountEngine::new(w.left(), w.right(), a).unwrap();
        let catalog = Catalog::new(FeatureSet::Full);

        // Held-out true pairs vs deliberately shifted (wrong) pairs.
        let held_out: Vec<_> = w.truth().links()[15..].to_vec();
        let true_cands: Vec<_> = held_out.iter().map(|l| (l.left, l.right)).collect();
        let wrong_cands: Vec<_> = held_out
            .iter()
            .zip(held_out.iter().cycle().skip(1))
            .map(|(a, b)| (a.left, b.right))
            .collect();

        let ft = extract_features(&engine, &catalog, &true_cands);
        let fw = extract_features(&engine, &catalog, &wrong_cands);
        let mean = |m: &DenseMatrix| m.data().iter().sum::<f64>() / m.data().len() as f64;
        assert!(
            mean(&ft.x) > mean(&fw.x),
            "true pairs {:.4} should outscore wrong pairs {:.4}",
            mean(&ft.x),
            mean(&fw.x)
        );
    }

    #[test]
    fn plan_order_equals_naive_order_in_results() {
        // Extraction must be independent of evaluation order.
        let (w, train) = setup();
        let a = anchor_matrix(w.left().n_users(), w.right().n_users(), &train).unwrap();
        let catalog = Catalog::new(FeatureSet::Full);
        let candidates: Vec<_> = w.truth().iter().map(|l| (l.left, l.right)).collect();

        let engine = CountEngine::new(w.left(), w.right(), a.clone()).unwrap();
        let planned = extract_features(&engine, &catalog, &candidates);

        // Naive: count each diagram in catalog order with a fresh engine.
        let fresh = CountEngine::new(w.left(), w.right(), a).unwrap();
        let mut x = DenseMatrix::zeros(candidates.len(), catalog.len());
        for (col, e) in catalog.entries().iter().enumerate() {
            let prox = dice_proximity(&fresh.count(&e.diagram));
            for (row, &(l, r)) in candidates.iter().enumerate() {
                x[(row, col)] = prox.get(l.index(), r.index());
            }
        }
        assert!(planned.x.max_abs_diff(&x) < 1e-12);
    }

    #[test]
    fn parallel_extraction_is_bit_equal_to_serial() {
        let (w, train) = setup();
        let a = anchor_matrix(w.left().n_users(), w.right().n_users(), &train).unwrap();
        let catalog = Catalog::new(FeatureSet::Full);
        let candidates: Vec<_> = w.truth().iter().map(|l| (l.left, l.right)).collect();

        let serial_engine = CountEngine::new(w.left(), w.right(), a.clone()).unwrap();
        let serial = extract_features(&serial_engine, &catalog, &candidates);

        for threads in [2usize, 3, 8] {
            let engine = CountEngine::new(w.left(), w.right(), a.clone()).unwrap();
            let par = extract_features_par(
                &engine,
                &catalog,
                &candidates,
                sparsela::Threading::Threads(threads),
            );
            assert_eq!(par.names, serial.names);
            assert_eq!(
                par.x.data(),
                serial.x.data(),
                "parallel ({threads} threads) diverged from serial"
            );
        }
    }

    #[test]
    fn parallel_proximity_matrices_match_serial() {
        let (w, train) = setup();
        let a = anchor_matrix(w.left().n_users(), w.right().n_users(), &train).unwrap();
        let catalog = Catalog::new(FeatureSet::Full);
        let serial_engine = CountEngine::new(w.left(), w.right(), a.clone()).unwrap();
        let serial = proximity_matrices(&serial_engine, &catalog);
        let engine = CountEngine::new(w.left(), w.right(), a).unwrap();
        let par = proximity_matrices_par(&engine, &catalog, sparsela::Threading::Threads(4));
        assert_eq!(par, serial);
        // The shared cache must have been reused across workers: stacked
        // diagrams only pay a Hadamard once their factors are cached, so
        // misses equal the number of distinct diagrams (factors included).
        assert!(engine.stats().cache_misses >= catalog.len());
    }

    #[test]
    fn dag_schedule_is_bit_equal_to_levels_schedule() {
        let (w, train) = setup();
        let a = anchor_matrix(w.left().n_users(), w.right().n_users(), &train).unwrap();
        let catalog = Catalog::new(FeatureSet::Full);
        let serial_engine = CountEngine::new(w.left(), w.right(), a.clone()).unwrap();
        let serial = proximity_matrices(&serial_engine, &catalog);
        for threads in [2usize, 4, 8] {
            for schedule in [DiagramSchedule::Dag, DiagramSchedule::Levels] {
                let engine = CountEngine::new(w.left(), w.right(), a.clone()).unwrap();
                let got = proximity_matrices_sched(
                    &engine,
                    &catalog,
                    sparsela::Threading::Threads(threads),
                    schedule,
                );
                assert_eq!(got, serial, "{schedule:?} at {threads} threads diverged");
                // The shared cache still guarantees compute-exactly-once.
                assert!(engine.stats().cache_misses >= catalog.len());
            }
        }
    }

    #[test]
    fn empty_candidates_yield_empty_matrix() {
        let (w, train) = setup();
        let a = anchor_matrix(w.left().n_users(), w.right().n_users(), &train).unwrap();
        let engine = CountEngine::new(w.left(), w.right(), a).unwrap();
        let catalog = Catalog::new(FeatureSet::MetaPathsOnly);
        let fm = extract_features(&engine, &catalog, &[]);
        assert_eq!(fm.n_rows(), 0);
        assert_eq!(fm.n_features(), 6);
    }
}
