//! Feature-matrix extraction for candidate anchor links.
//!
//! For every catalog entry, the count engine produces the instance count
//! matrix, [`crate::proximity::dice_proximity`] normalizes it, and the
//! candidate pairs gather their scores into a dense row — one row per
//! candidate anchor link, one column per meta diagram. This matrix (plus a
//! bias column added by the model layer) is the `X` of the paper's joint
//! objective.
//!
//! Extraction parallelizes on two axes, both controlled by a
//! [`Threading`] knob and both **bit-identical** to the serial path:
//!
//! * **diagram fan-out** — catalog entries are evaluated level by level
//!   ([`crate::covering::plan_levels`]); within a level the diagrams are
//!   independent, so workers count them concurrently while sharing the
//!   engine's Lemma-2 cache, with a barrier between levels so endpoint
//!   stackings always find their factors cached;
//! * **candidate fan-out** — the gather into the dense feature matrix is
//!   split over contiguous candidate batches.

use crate::catalog::Catalog;
use crate::count::CountEngine;
use crate::covering::{plan_levels, plan_order};
use crate::proximity::dice_proximity;
use hetnet::UserId;
use sparsela::{CsrMatrix, DenseMatrix, Threading};

/// The extracted feature matrix with column names.
#[derive(Debug, Clone)]
pub struct FeatureMatrix {
    /// `candidates.len() × catalog.len()` dense matrix of proximities.
    pub x: DenseMatrix,
    /// Column names, aligned with `x`'s columns.
    pub names: Vec<String>,
}

impl FeatureMatrix {
    /// Number of candidate rows.
    pub fn n_rows(&self) -> usize {
        self.x.nrows()
    }

    /// Number of feature columns.
    pub fn n_features(&self) -> usize {
        self.x.ncols()
    }
}

/// Computes the per-diagram proximity matrices for the whole catalog.
///
/// Evaluation follows [`plan_order`]: diagrams with smaller covering sets
/// first, so endpoint stackings find their factors cached (Lemma 2 reuse).
/// Returns the matrices in *catalog order* regardless of evaluation order.
pub fn proximity_matrices(engine: &CountEngine<'_>, catalog: &Catalog) -> Vec<CsrMatrix> {
    proximity_matrices_par(engine, catalog, Threading::Serial)
}

/// [`proximity_matrices`] with the catalog fanned out over worker threads.
///
/// Diagrams are evaluated level by level (equal covering-set size); within a
/// level the workers share the engine's memoization cache, and a barrier
/// between levels preserves the Lemma-2 reuse guarantee. Results are
/// bit-identical to the serial path at any thread count.
pub fn proximity_matrices_par(
    engine: &CountEngine<'_>,
    catalog: &Catalog,
    threading: Threading,
) -> Vec<CsrMatrix> {
    let coverings = catalog.coverings();
    let workers = threading.resolve();
    let mut out: Vec<Option<CsrMatrix>> = vec![None; catalog.len()];
    if workers <= 1 {
        for idx in plan_order(&coverings) {
            let counts = engine.count(&catalog.entries()[idx].diagram);
            out[idx] = Some(dice_proximity(&counts));
        }
    } else {
        for level in plan_levels(&coverings) {
            let per_worker = level.len().div_ceil(workers);
            let batches: Vec<Vec<(usize, CsrMatrix)>> = std::thread::scope(|scope| {
                let handles: Vec<_> = level
                    .chunks(per_worker)
                    .map(|idxs| {
                        scope.spawn(move || {
                            idxs.iter()
                                .map(|&idx| {
                                    let counts = engine.count(&catalog.entries()[idx].diagram);
                                    (idx, dice_proximity(&counts))
                                })
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("proximity worker panicked"))
                    .collect()
            });
            for batch in batches {
                for (idx, prox) in batch {
                    out[idx] = Some(prox);
                }
            }
        }
    }
    out.into_iter()
        .map(|m| m.expect("every catalog index visited"))
        .collect()
}

/// Extracts the dense feature matrix for `candidates`.
///
/// Candidates are `(left user, right user)` pairs; rows follow their order.
pub fn extract_features(
    engine: &CountEngine<'_>,
    catalog: &Catalog,
    candidates: &[(UserId, UserId)],
) -> FeatureMatrix {
    extract_features_par(engine, catalog, candidates, Threading::Serial)
}

/// [`extract_features`] with diagram counting *and* the candidate gather
/// fanned out over worker threads. Bit-identical to the serial path.
pub fn extract_features_par(
    engine: &CountEngine<'_>,
    catalog: &Catalog,
    candidates: &[(UserId, UserId)],
    threading: Threading,
) -> FeatureMatrix {
    let proxies = proximity_matrices_par(engine, catalog, threading);
    let names = catalog.names().into_iter().map(String::from).collect();
    gather_features(&proxies, names, candidates, threading)
}

/// Gathers per-candidate feature rows from already-computed proximity
/// matrices (one per feature column, in column order; owned or borrowed —
/// the session's partial column refresh passes `&[&CsrMatrix]`). This is
/// the shared tail of [`extract_features_par`] and of the session API's
/// featurization, so both produce bit-identical matrices by construction.
/// The gather is split over contiguous candidate batches when `threading`
/// allows; results are identical at any worker count.
pub fn gather_features<M>(
    proxies: &[M],
    names: Vec<String>,
    candidates: &[(UserId, UserId)],
    threading: Threading,
) -> FeatureMatrix
where
    M: std::borrow::Borrow<CsrMatrix> + Sync,
{
    assert_eq!(proxies.len(), names.len(), "one proximity per column");
    let ncols = proxies.len();
    let mut x = DenseMatrix::zeros(candidates.len(), ncols);
    let workers = threading.resolve().min(candidates.len()).max(1);
    if workers <= 1 {
        for (col, prox) in proxies.iter().enumerate() {
            for (row, &(l, r)) in candidates.iter().enumerate() {
                let v = prox.borrow().get(l.index(), r.index());
                if v != 0.0 {
                    x[(row, col)] = v;
                }
            }
        }
    } else {
        // Contiguous candidate batches; each worker fills a private buffer
        // that is copied into the shared matrix after the join.
        let per_worker = candidates.len().div_ceil(workers);
        let blocks: Vec<(usize, Vec<f64>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = candidates
                .chunks(per_worker)
                .enumerate()
                .map(|(block, batch)| {
                    scope.spawn(move || {
                        let mut buf = vec![0f64; batch.len() * ncols];
                        for (col, prox) in proxies.iter().enumerate() {
                            for (row, &(l, r)) in batch.iter().enumerate() {
                                let v = prox.borrow().get(l.index(), r.index());
                                if v != 0.0 {
                                    buf[row * ncols + col] = v;
                                }
                            }
                        }
                        (block * per_worker, buf)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("gather worker panicked"))
                .collect()
        });
        for (first_row, buf) in blocks {
            for (i, row_buf) in buf.chunks(ncols).enumerate() {
                x.row_mut(first_row + i).copy_from_slice(row_buf);
            }
        }
    }
    FeatureMatrix { x, names }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::FeatureSet;
    use datagen::presets;
    use hetnet::aligned::anchor_matrix;

    fn setup() -> (datagen::GeneratedWorld, Vec<hetnet::AnchorLink>) {
        let w = datagen::generate(&presets::tiny(21));
        // Use the first half of the anchors as "training" anchors.
        let train: Vec<_> = w.truth().links()[..15].to_vec();
        (w, train)
    }

    #[test]
    fn feature_matrix_shape_and_names() {
        let (w, train) = setup();
        let a = anchor_matrix(w.left().n_users(), w.right().n_users(), &train).unwrap();
        let engine = CountEngine::new(w.left(), w.right(), a).unwrap();
        let catalog = Catalog::new(FeatureSet::Full);
        let candidates: Vec<_> = w
            .truth()
            .iter()
            .map(|l| (l.left, l.right))
            .take(10)
            .collect();
        let fm = extract_features(&engine, &catalog, &candidates);
        assert_eq!(fm.n_rows(), 10);
        assert_eq!(fm.n_features(), 31);
        assert_eq!(fm.names.len(), 31);
        // Every value is a valid Dice proximity.
        for v in fm.x.data() {
            assert!((0.0..=1.0).contains(v), "proximity {v} out of range");
        }
    }

    #[test]
    fn true_pairs_score_higher_than_mismatched_pairs_on_average() {
        let (w, train) = setup();
        let a = anchor_matrix(w.left().n_users(), w.right().n_users(), &train).unwrap();
        let engine = CountEngine::new(w.left(), w.right(), a).unwrap();
        let catalog = Catalog::new(FeatureSet::Full);

        // Held-out true pairs vs deliberately shifted (wrong) pairs.
        let held_out: Vec<_> = w.truth().links()[15..].to_vec();
        let true_cands: Vec<_> = held_out.iter().map(|l| (l.left, l.right)).collect();
        let wrong_cands: Vec<_> = held_out
            .iter()
            .zip(held_out.iter().cycle().skip(1))
            .map(|(a, b)| (a.left, b.right))
            .collect();

        let ft = extract_features(&engine, &catalog, &true_cands);
        let fw = extract_features(&engine, &catalog, &wrong_cands);
        let mean = |m: &DenseMatrix| m.data().iter().sum::<f64>() / m.data().len() as f64;
        assert!(
            mean(&ft.x) > mean(&fw.x),
            "true pairs {:.4} should outscore wrong pairs {:.4}",
            mean(&ft.x),
            mean(&fw.x)
        );
    }

    #[test]
    fn plan_order_equals_naive_order_in_results() {
        // Extraction must be independent of evaluation order.
        let (w, train) = setup();
        let a = anchor_matrix(w.left().n_users(), w.right().n_users(), &train).unwrap();
        let catalog = Catalog::new(FeatureSet::Full);
        let candidates: Vec<_> = w.truth().iter().map(|l| (l.left, l.right)).collect();

        let engine = CountEngine::new(w.left(), w.right(), a.clone()).unwrap();
        let planned = extract_features(&engine, &catalog, &candidates);

        // Naive: count each diagram in catalog order with a fresh engine.
        let fresh = CountEngine::new(w.left(), w.right(), a).unwrap();
        let mut x = DenseMatrix::zeros(candidates.len(), catalog.len());
        for (col, e) in catalog.entries().iter().enumerate() {
            let prox = dice_proximity(&fresh.count(&e.diagram));
            for (row, &(l, r)) in candidates.iter().enumerate() {
                x[(row, col)] = prox.get(l.index(), r.index());
            }
        }
        assert!(planned.x.max_abs_diff(&x) < 1e-12);
    }

    #[test]
    fn parallel_extraction_is_bit_equal_to_serial() {
        let (w, train) = setup();
        let a = anchor_matrix(w.left().n_users(), w.right().n_users(), &train).unwrap();
        let catalog = Catalog::new(FeatureSet::Full);
        let candidates: Vec<_> = w.truth().iter().map(|l| (l.left, l.right)).collect();

        let serial_engine = CountEngine::new(w.left(), w.right(), a.clone()).unwrap();
        let serial = extract_features(&serial_engine, &catalog, &candidates);

        for threads in [2usize, 3, 8] {
            let engine = CountEngine::new(w.left(), w.right(), a.clone()).unwrap();
            let par = extract_features_par(
                &engine,
                &catalog,
                &candidates,
                sparsela::Threading::Threads(threads),
            );
            assert_eq!(par.names, serial.names);
            assert_eq!(
                par.x.data(),
                serial.x.data(),
                "parallel ({threads} threads) diverged from serial"
            );
        }
    }

    #[test]
    fn parallel_proximity_matrices_match_serial() {
        let (w, train) = setup();
        let a = anchor_matrix(w.left().n_users(), w.right().n_users(), &train).unwrap();
        let catalog = Catalog::new(FeatureSet::Full);
        let serial_engine = CountEngine::new(w.left(), w.right(), a.clone()).unwrap();
        let serial = proximity_matrices(&serial_engine, &catalog);
        let engine = CountEngine::new(w.left(), w.right(), a).unwrap();
        let par = proximity_matrices_par(&engine, &catalog, sparsela::Threading::Threads(4));
        assert_eq!(par, serial);
        // The shared cache must have been reused across workers: stacked
        // diagrams only pay a Hadamard once their factors are cached, so
        // misses equal the number of distinct diagrams (factors included).
        assert!(engine.stats().cache_misses >= catalog.len());
    }

    #[test]
    fn empty_candidates_yield_empty_matrix() {
        let (w, train) = setup();
        let a = anchor_matrix(w.left().n_users(), w.right().n_users(), &train).unwrap();
        let engine = CountEngine::new(w.left(), w.right(), a).unwrap();
        let catalog = Catalog::new(FeatureSet::MetaPathsOnly);
        let fm = extract_features(&engine, &catalog, &[]);
        assert_eq!(fm.n_rows(), 0);
        assert_eq!(fm.n_features(), 6);
    }
}
