//! Cross-crate invariants between generated worlds and the partition
//! layer: generated networks are author-grouped, so the trivial induced
//! sub-network is bit-identical, and community-structured worlds actually
//! partition along their latent blocks.

use hetnet::partition::{induce_subnet, PartitionConfig, PartitionMap};
use hetnet::{Direction, LinkKind, UserId};

#[test]
fn trivial_induction_is_bit_identical_on_generated_worlds() {
    let w = datagen::generate(&datagen::presets::tiny(17));
    for net in [w.left(), w.right()] {
        let members: Vec<UserId> = (0..net.n_users()).map(UserId::from_index).collect();
        let sub = induce_subnet(net, &members);
        for kind in LinkKind::ALL {
            assert_eq!(
                sub.net.adjacency(kind, Direction::Forward),
                net.adjacency(kind, Direction::Forward),
                "{kind:?} diverged under the trivial partition of {}",
                net.name()
            );
        }
    }
}

#[test]
fn detected_partitions_recover_latent_communities() {
    let cfg = datagen::GeneratorConfig {
        n_communities: 4,
        community_bias: 0.9,
        noise_edge_frac: 0.02,
        ..datagen::presets::small(23)
    };
    let w = datagen::generate(&cfg);
    let map = PartitionMap::detect(
        w.left(),
        &PartitionConfig {
            min_size: 10,
            ..Default::default()
        },
    );
    assert!(
        map.n_partitions() >= 2,
        "expected multiple communities, got {}",
        map.n_partitions()
    );
    // Detected partitions should mostly respect the latent contiguous
    // blocks: measure purity of each detected partition against the
    // dominant latent community of its shared members.
    let n_shared = 120;
    let (mut agree, mut total) = (0usize, 0usize);
    for p in 0..map.n_partitions() {
        let mut per_latent = std::collections::HashMap::new();
        let shared: Vec<usize> = map
            .members(p)
            .iter()
            .map(|u| u.index())
            .filter(|&u| u < n_shared)
            .collect();
        for &u in &shared {
            *per_latent
                .entry(datagen::follow::community_of(u, n_shared, 4))
                .or_insert(0usize) += 1;
        }
        if let Some(&best) = per_latent.values().max() {
            agree += best;
            total += shared.len();
        }
    }
    let purity = agree as f64 / total.max(1) as f64;
    assert!(purity > 0.7, "partition purity vs latent blocks: {purity}");
}

#[test]
fn boundary_nodes_exist_between_latent_communities() {
    let cfg = datagen::GeneratorConfig {
        n_communities: 3,
        community_bias: 0.85,
        ..datagen::presets::tiny(31)
    };
    let w = datagen::generate(&cfg);
    let map = PartitionMap::detect(
        w.left(),
        &PartitionConfig {
            min_size: 4,
            ..Default::default()
        },
    );
    if map.n_partitions() > 1 {
        assert!(
            map.boundary_nodes().count() > 0,
            "multiple partitions must expose boundary nodes"
        );
    }
}
