//! Property tests for the generator: structural invariants must hold for
//! arbitrary configurations, not just the presets.

use datagen::{generate, GeneratorConfig};
use proptest::prelude::*;

fn config_strategy() -> impl Strategy<Value = GeneratorConfig> {
    (
        1u64..1000,
        5usize..60,
        0usize..20,
        0usize..20,
        2usize..80,
        2usize..60,
        (0usize..4, 0.0f64..=1.0),
    )
        .prop_map(
            |(seed, shared, xl, xr, locs, ts, (archetypes, mix))| GeneratorConfig {
                seed,
                n_shared_users: shared,
                n_extra_left: xl,
                n_extra_right: xr,
                n_locations: locs,
                n_timestamps: ts,
                n_archetypes: archetypes,
                archetype_mix: mix,
                ..GeneratorConfig::default()
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn anchors_form_a_perfect_matching_over_shared_users(cfg in config_strategy()) {
        let w = generate(&cfg);
        prop_assert_eq!(w.truth().len(), cfg.n_shared_users);
        let mut left_seen = vec![false; w.left().n_users()];
        let mut right_seen = vec![false; w.right().n_users()];
        for a in w.truth().iter() {
            prop_assert!(!left_seen[a.left.index()]);
            prop_assert!(!right_seen[a.right.index()]);
            left_seen[a.left.index()] = true;
            right_seen[a.right.index()] = true;
            // Shared users occupy the first indices on both sides.
            prop_assert!(a.left.index() < cfg.n_shared_users);
            prop_assert!(a.right.index() < cfg.n_shared_users);
        }
    }

    #[test]
    fn populations_match_config(cfg in config_strategy()) {
        let w = generate(&cfg);
        prop_assert_eq!(w.left().n_users(), cfg.n_left_users());
        prop_assert_eq!(w.right().n_users(), cfg.n_right_users());
        prop_assert_eq!(w.left().count(hetnet::NodeKind::Location), cfg.n_locations);
        prop_assert_eq!(w.right().count(hetnet::NodeKind::Timestamp), cfg.n_timestamps);
    }

    #[test]
    fn every_post_is_a_complete_checkin(cfg in config_strategy()) {
        let w = generate(&cfg);
        for net in [w.left(), w.right()] {
            for p in 0..net.n_posts() {
                let pid = hetnet::PostId::from_index(p);
                prop_assert!(net.author_of(pid).is_some());
                prop_assert_eq!(net.locations_of(pid).count(), 1);
                prop_assert_eq!(net.timestamps_of(pid).count(), 1);
            }
        }
    }

    #[test]
    fn no_self_follows_anywhere(cfg in config_strategy()) {
        let w = generate(&cfg);
        for net in [w.left(), w.right()] {
            for u in 0..net.n_users() {
                let uid = hetnet::UserId::from_index(u);
                prop_assert!(!net.follows(uid, uid));
            }
        }
    }

    #[test]
    fn generation_is_a_pure_function_of_the_seed(cfg in config_strategy()) {
        let a = generate(&cfg);
        let b = generate(&cfg);
        prop_assert_eq!(&a.sigma, &b.sigma);
        prop_assert_eq!(a.left().n_posts(), b.left().n_posts());
        prop_assert_eq!(a.right().link_count(hetnet::LinkKind::Follow),
                        b.right().link_count(hetnet::LinkKind::Follow));
    }
}
