//! Post / check-in generation.
//!
//! Every user owns a **habit profile**: a small set of (location, timestamp)
//! pairs. Shared (anchored) users use the *same* profile on both networks,
//! so their accounts co-check-in at the same place *and* time — the joint
//! signal only the Ψ2 meta diagram can see. With probability
//! `profile_noise` a post instead draws location and timestamp
//! *independently* from global popularity distributions: two users may then
//! share locations (P6) and timestamps (P5) without ever sharing a
//! (location, timestamp) pair — the paper's "dislocated" false-positive
//! pattern that motivates meta diagrams in §III-B.2.

use crate::config::GeneratorConfig;
use rand::rngs::StdRng;
use rand::Rng;

/// A user's spatio-temporal habit profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Profile {
    /// Habitual (location, timestamp) pairs, reused across networks for
    /// anchored users.
    pub habits: Vec<(usize, usize)>,
    /// Topical vocabulary (empty when words are disabled).
    pub words: Vec<usize>,
}

/// One generated post: author is implicit (callers track it), the rest are
/// attribute node indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PostRecord {
    /// Location index of the check-in.
    pub location: usize,
    /// Timestamp index of the check-in.
    pub timestamp: usize,
}

/// Zipf-like sampler over `0..n`: weight of rank `i` is `(i+1)^-skew`.
/// Precomputes the CDF once; sampling is a binary search.
#[derive(Debug, Clone)]
pub struct PopularitySampler {
    cdf: Vec<f64>,
}

impl PopularitySampler {
    /// Builds the sampler for a universe of `n` items with skew `s ≥ 0`.
    ///
    /// # Panics
    /// Panics when `n == 0`.
    pub fn new(n: usize, skew: f64) -> Self {
        assert!(n > 0, "empty universe");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += ((i + 1) as f64).powf(-skew);
            cdf.push(acc);
        }
        // srclint: allow(panic_in_lib, reason = "cdf is non-empty: the constructor asserts n > 0 above")
        let total = *cdf.last().unwrap();
        for v in &mut cdf {
            *v /= total;
        }
        PopularitySampler { cdf }
    }

    /// Draws one index.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen();
        match self.cdf.binary_search_by(|probe| probe.total_cmp(&u)) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

/// A shared pool of habitual (location, timestamp) pairs — the hangouts of
/// one community/archetype. Users of the same archetype draw part of their
/// profile from this pool, which makes them *confusable* with each other
/// (the property the active query strategy exploits on real data).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchetypePool {
    /// The pool's habit pairs.
    pub habits: Vec<(usize, usize)>,
}

/// Samples the archetype pools (each 4× a single profile's habit count).
pub fn sample_archetypes(
    rng: &mut StdRng,
    cfg: &GeneratorConfig,
    loc_sampler: &PopularitySampler,
    ts_sampler: &PopularitySampler,
) -> Vec<ArchetypePool> {
    (0..cfg.n_archetypes)
        .map(|_| ArchetypePool {
            habits: (0..cfg.n_habits * 4)
                .map(|_| (loc_sampler.sample(rng), ts_sampler.sample(rng)))
                .collect(),
        })
        .collect()
}

/// Draws a habit profile: `n_habits` (location, timestamp) pairs — an
/// `archetype_mix` fraction from the user's archetype pool (when one is
/// given), the rest sampled from the global popularity distributions — plus
/// a topical vocabulary.
pub fn sample_profile(
    rng: &mut StdRng,
    cfg: &GeneratorConfig,
    loc_sampler: &PopularitySampler,
    ts_sampler: &PopularitySampler,
    word_sampler: Option<&PopularitySampler>,
    archetype: Option<&ArchetypePool>,
) -> Profile {
    let habits = (0..cfg.n_habits)
        .map(|_| match archetype {
            Some(pool) if !pool.habits.is_empty() && rng.gen::<f64>() < cfg.archetype_mix => {
                pool.habits[rng.gen_range(0..pool.habits.len())]
            }
            _ => (loc_sampler.sample(rng), ts_sampler.sample(rng)),
        })
        .collect();
    let words = match word_sampler {
        Some(ws) => (0..cfg.n_profile_words).map(|_| ws.sample(rng)).collect(),
        None => Vec::new(),
    };
    Profile { habits, words }
}

/// Generates the posts of one user on one network.
///
/// `mean_posts` is the expected count (geometric-ish, ≥ 0). Habit posts pick
/// one of the profile's joint pairs; noise posts draw location and timestamp
/// independently.
pub fn generate_posts(
    rng: &mut StdRng,
    profile: &Profile,
    mean_posts: f64,
    cfg: &GeneratorConfig,
    loc_sampler: &PopularitySampler,
    ts_sampler: &PopularitySampler,
) -> Vec<PostRecord> {
    let n = sample_count(rng, mean_posts);
    let mut posts = Vec::with_capacity(n);
    for _ in 0..n {
        let noise = profile.habits.is_empty() || rng.gen::<f64>() < cfg.profile_noise;
        let (location, timestamp) = if noise {
            (loc_sampler.sample(rng), ts_sampler.sample(rng))
        } else {
            profile.habits[rng.gen_range(0..profile.habits.len())]
        };
        posts.push(PostRecord {
            location,
            timestamp,
        });
    }
    posts
}

/// Geometric-flavoured non-negative count with the requested mean.
fn sample_count(rng: &mut StdRng, mean: f64) -> usize {
    if mean <= 0.0 {
        return 0;
    }
    let p = 1.0 / (mean + 1.0);
    let mut k = 0usize;
    let cap = (10.0 * mean).ceil() as usize + 4;
    while k < cap && rng.gen::<f64>() > p {
        k += 1;
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    #[test]
    fn popularity_sampler_prefers_head_when_skewed() {
        let s = PopularitySampler::new(100, 1.2);
        let mut r = rng();
        let mut head = 0;
        let trials = 4000;
        for _ in 0..trials {
            if s.sample(&mut r) < 10 {
                head += 1;
            }
        }
        // With skew 1.2 over 100 items, the top-10 mass is far above the
        // uniform 10%.
        assert!(
            head as f64 / trials as f64 > 0.4,
            "head mass {head}/{trials}"
        );
    }

    #[test]
    fn popularity_sampler_uniform_when_unskewed() {
        let s = PopularitySampler::new(50, 0.0);
        let mut r = rng();
        let mut head = 0;
        let trials = 5000;
        for _ in 0..trials {
            if s.sample(&mut r) < 25 {
                head += 1;
            }
        }
        let frac = head as f64 / trials as f64;
        assert!((frac - 0.5).abs() < 0.05, "uniform head mass {frac}");
    }

    #[test]
    fn sampler_output_in_range() {
        let s = PopularitySampler::new(7, 2.0);
        let mut r = rng();
        for _ in 0..1000 {
            assert!(s.sample(&mut r) < 7);
        }
    }

    #[test]
    fn profiles_have_requested_shape() {
        let cfg = GeneratorConfig::default();
        let loc = PopularitySampler::new(cfg.n_locations, cfg.popularity_skew);
        let ts = PopularitySampler::new(cfg.n_timestamps, 0.0);
        let p = sample_profile(&mut rng(), &cfg, &loc, &ts, None, None);
        assert_eq!(p.habits.len(), cfg.n_habits);
        assert!(p.words.is_empty());
        for &(l, t) in &p.habits {
            assert!(l < cfg.n_locations);
            assert!(t < cfg.n_timestamps);
        }
    }

    #[test]
    fn habit_posts_reuse_profile_pairs() {
        let cfg = GeneratorConfig {
            profile_noise: 0.0,
            ..Default::default()
        };
        let loc = PopularitySampler::new(cfg.n_locations, cfg.popularity_skew);
        let ts = PopularitySampler::new(cfg.n_timestamps, 0.0);
        let mut r = rng();
        let profile = sample_profile(&mut r, &cfg, &loc, &ts, None, None);
        let posts = generate_posts(&mut r, &profile, 20.0, &cfg, &loc, &ts);
        for p in &posts {
            assert!(
                profile.habits.contains(&(p.location, p.timestamp)),
                "noise-free post must come from the profile"
            );
        }
    }

    #[test]
    fn pure_noise_posts_need_no_profile() {
        let cfg = GeneratorConfig {
            profile_noise: 1.0,
            ..Default::default()
        };
        let loc = PopularitySampler::new(cfg.n_locations, 0.0);
        let ts = PopularitySampler::new(cfg.n_timestamps, 0.0);
        let empty = Profile {
            habits: vec![],
            words: vec![],
        };
        let posts = generate_posts(&mut rng(), &empty, 5.0, &cfg, &loc, &ts);
        for p in &posts {
            assert!(p.location < cfg.n_locations);
            assert!(p.timestamp < cfg.n_timestamps);
        }
    }

    #[test]
    fn archetype_members_share_habits() {
        let cfg = GeneratorConfig {
            archetype_mix: 1.0,
            ..Default::default()
        };
        let loc = PopularitySampler::new(cfg.n_locations, 0.0);
        let ts = PopularitySampler::new(cfg.n_timestamps, 0.0);
        let mut r = rng();
        let pools = sample_archetypes(&mut r, &cfg, &loc, &ts);
        assert_eq!(pools.len(), cfg.n_archetypes);
        let a = sample_profile(&mut r, &cfg, &loc, &ts, None, Some(&pools[0]));
        let b = sample_profile(&mut r, &cfg, &loc, &ts, None, Some(&pools[0]));
        // With mix = 1.0 every habit comes from the pool.
        for h in a.habits.iter().chain(b.habits.iter()) {
            assert!(pools[0].habits.contains(h));
        }
    }

    #[test]
    fn zero_mix_ignores_archetype() {
        let cfg = GeneratorConfig {
            archetype_mix: 0.0,
            n_habits: 64,
            ..Default::default()
        };
        let loc = PopularitySampler::new(cfg.n_locations, 0.0);
        let ts = PopularitySampler::new(cfg.n_timestamps, 0.0);
        let mut r = rng();
        let pool = ArchetypePool {
            habits: vec![(0, 0)],
        };
        let p = sample_profile(&mut r, &cfg, &loc, &ts, None, Some(&pool));
        // 64 independent draws over 120×80 pairs virtually never all equal (0,0).
        assert!(p.habits.iter().any(|&h| h != (0, 0)));
    }

    #[test]
    fn post_count_mean_is_close() {
        let mut r = rng();
        let total: usize = (0..3000).map(|_| sample_count(&mut r, 6.0)).sum();
        let mean = total as f64 / 3000.0;
        assert!(mean > 4.8 && mean < 7.2, "mean {mean}");
    }

    #[test]
    fn zero_mean_gives_no_posts() {
        let mut r = rng();
        assert_eq!(sample_count(&mut r, 0.0), 0);
    }
}
