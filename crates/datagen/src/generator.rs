//! World assembly: latent graph → two networks → aligned pair.

use crate::activity::{
    generate_posts, sample_archetypes, sample_profile, PopularitySampler, Profile,
};
use crate::config::GeneratorConfig;
use crate::follow::{latent_graph, materialize_network};
use hetnet::{
    AlignedPair, AnchorLink, AnchorSet, HetNet, HetNetBuilder, LocationId, PostId, TimestampId,
    UserId, WordId,
};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// The generated world: the aligned pair plus generation metadata useful to
/// experiments and tests.
#[derive(Debug, Clone)]
pub struct GeneratedWorld {
    /// The two aligned networks with ground-truth anchors.
    pub pair: AlignedPair,
    /// The permutation mapping left shared user `i` to its right-network
    /// account (`sigma[i]`), as generated.
    pub sigma: Vec<usize>,
    /// Configuration used.
    pub config: GeneratorConfig,
}

/// Generates a world from the configuration. Deterministic in `cfg.seed`.
///
/// Left shared users occupy indices `0..n_shared_users` in the left network;
/// their right-network accounts are at `sigma[i]` — a random permutation of
/// `0..n_shared_users`, so alignment is never the identity. Extra users fill
/// the remaining indices on each side.
pub fn generate(cfg: &GeneratorConfig) -> GeneratedWorld {
    cfg.validate();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n_shared = cfg.n_shared_users;
    let n_left = cfg.n_left_users();
    let n_right = cfg.n_right_users();

    // Ground-truth matching: left i <-> right sigma[i].
    let mut sigma: Vec<usize> = (0..n_shared).collect();
    sigma.shuffle(&mut rng);

    // Social structure.
    let latent = latent_graph(&mut rng, cfg);
    let left_edges = materialize_network(
        &mut rng,
        &latent,
        cfg.keep_left,
        &|u| u,
        n_left,
        cfg,
        n_shared,
    );
    let sigma_ref = sigma.clone();
    let right_edges = materialize_network(
        &mut rng,
        &latent,
        cfg.keep_right,
        &|u| sigma_ref[u],
        n_right,
        cfg,
        n_shared,
    );

    // Activity structure.
    let loc_sampler = PopularitySampler::new(cfg.n_locations, cfg.popularity_skew);
    let ts_sampler = PopularitySampler::new(cfg.n_timestamps, 0.0);
    let word_sampler = if cfg.n_words > 0 {
        Some(PopularitySampler::new(cfg.n_words, cfg.popularity_skew))
    } else {
        None
    };

    // Archetype pools and per-user archetype assignment. A shared user and
    // its counterpart have the same archetype by construction (the profile
    // itself is shared); extra users get their own assignment.
    let archetypes = sample_archetypes(&mut rng, cfg, &loc_sampler, &ts_sampler);
    let pick_archetype = |rng: &mut StdRng| -> Option<usize> {
        if archetypes.is_empty() {
            None
        } else {
            Some(rng.gen_range(0..archetypes.len()))
        }
    };

    // Shared users' profiles (reused on both sides). Extra users get fresh
    // independent profiles below.
    let shared_profiles: Vec<Profile> = (0..n_shared)
        .map(|_| {
            let arch = pick_archetype(&mut rng).map(|i| &archetypes[i]);
            sample_profile(
                &mut rng,
                cfg,
                &loc_sampler,
                &ts_sampler,
                word_sampler.as_ref(),
                arch,
            )
        })
        .collect();

    let mut left_builder = HetNetBuilder::new(
        "left(twitter-like)",
        n_left,
        cfg.n_locations,
        cfg.n_timestamps,
        cfg.n_words,
    );
    let mut right_builder = HetNetBuilder::new(
        "right(foursquare-like)",
        n_right,
        cfg.n_locations,
        cfg.n_timestamps,
        cfg.n_words,
    );

    for &(u, v) in &left_edges.edges {
        left_builder
            .add_follow(UserId::from_index(u), UserId::from_index(v))
            .expect("generator produced in-range users");
    }
    for &(u, v) in &right_edges.edges {
        right_builder
            .add_follow(UserId::from_index(u), UserId::from_index(v))
            .expect("generator produced in-range users");
    }

    // Posts: left network.
    populate_posts(
        &mut rng,
        &mut left_builder,
        n_left,
        n_shared,
        |i| &shared_profiles[i],
        cfg.posts_per_user_left,
        cfg,
        &loc_sampler,
        &ts_sampler,
        word_sampler.as_ref(),
        &archetypes,
    );
    // Posts: right network — shared user at right index sigma[i] uses
    // profile i. Build the inverse map first.
    let mut inv_sigma = vec![usize::MAX; n_shared];
    for (i, &r) in sigma.iter().enumerate() {
        inv_sigma[r] = i;
    }
    populate_posts(
        &mut rng,
        &mut right_builder,
        n_right,
        n_shared,
        |r| &shared_profiles[inv_sigma[r]],
        cfg.posts_per_user_right,
        cfg,
        &loc_sampler,
        &ts_sampler,
        word_sampler.as_ref(),
        &archetypes,
    );

    let left = left_builder.build();
    let right = right_builder.build();

    let anchors = AnchorSet::try_new(
        sigma
            .iter()
            .enumerate()
            .map(|(i, &r)| AnchorLink::new(UserId::from_index(i), UserId::from_index(r)))
            .collect(),
    )
    .expect("sigma is a permutation, hence one-to-one");

    let pair = AlignedPair::new(left, right, anchors).expect("generator indices are in range");
    GeneratedWorld {
        pair,
        sigma,
        config: cfg.clone(),
    }
}

/// Adds every user's posts (and attribute links) to `builder`.
///
/// Users `< n_shared` (by this network's indexing) take their profile from
/// `profile_of`; extra users draw a fresh one.
#[allow(clippy::too_many_arguments)]
pub(crate) fn populate_posts<'a>(
    rng: &mut StdRng,
    builder: &mut HetNetBuilder,
    n_users: usize,
    n_shared: usize,
    profile_of: impl Fn(usize) -> &'a Profile,
    mean_posts: f64,
    cfg: &GeneratorConfig,
    loc_sampler: &PopularitySampler,
    ts_sampler: &PopularitySampler,
    word_sampler: Option<&PopularitySampler>,
    archetypes: &[crate::activity::ArchetypePool],
) {
    for u in 0..n_users {
        let fresh;
        let profile = if u < n_shared {
            profile_of(u)
        } else {
            let arch = if archetypes.is_empty() {
                None
            } else {
                Some(&archetypes[rng.gen_range(0..archetypes.len())])
            };
            fresh = sample_profile(rng, cfg, loc_sampler, ts_sampler, word_sampler, arch);
            &fresh
        };
        let posts = generate_posts(rng, profile, mean_posts, cfg, loc_sampler, ts_sampler);
        for rec in posts {
            let pid: PostId = builder
                .add_post(UserId::from_index(u))
                .expect("user index in range");
            builder
                .add_checkin(pid, LocationId::from_index(rec.location))
                .expect("location in range");
            builder
                .add_at(pid, TimestampId::from_index(rec.timestamp))
                .expect("timestamp in range");
            if let Some(ws) = word_sampler {
                for _ in 0..cfg.words_per_post {
                    // Mix topical and global words half/half.
                    let w = if !profile.words.is_empty() && rng.gen::<f64>() < 0.5 {
                        profile.words[rng.gen_range(0..profile.words.len())]
                    } else {
                        ws.sample(rng)
                    };
                    builder
                        .add_word(pid, WordId::from_index(w))
                        .expect("word in range");
                }
            }
        }
    }
}

/// Convenience: generate and return only the aligned pair.
pub fn generate_pair(cfg: &GeneratorConfig) -> AlignedPair {
    generate(cfg).pair
}

/// Convenience accessors used widely in tests and experiments.
impl GeneratedWorld {
    /// The left network.
    pub fn left(&self) -> &HetNet {
        self.pair.left()
    }

    /// The right network.
    pub fn right(&self) -> &HetNet {
        self.pair.right()
    }

    /// Ground-truth anchors.
    pub fn truth(&self) -> &AnchorSet {
        self.pair.truth()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> GeneratorConfig {
        GeneratorConfig {
            n_shared_users: 40,
            n_extra_left: 10,
            n_extra_right: 12,
            ..Default::default()
        }
    }

    #[test]
    fn world_has_requested_populations() {
        let w = generate(&small_cfg());
        assert_eq!(w.left().n_users(), 50);
        assert_eq!(w.right().n_users(), 52);
        assert_eq!(w.truth().len(), 40);
    }

    #[test]
    fn sigma_is_a_permutation_and_matches_truth() {
        let w = generate(&small_cfg());
        let mut seen = [false; 40];
        for &r in &w.sigma {
            assert!(!seen[r], "sigma repeats {r}");
            seen[r] = true;
        }
        for a in w.truth().iter() {
            assert_eq!(w.sigma[a.left.index()], a.right.index());
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let a = generate(&small_cfg());
        let b = generate(&small_cfg());
        assert_eq!(a.sigma, b.sigma);
        assert_eq!(
            a.left().link_count(hetnet::LinkKind::Follow),
            b.left().link_count(hetnet::LinkKind::Follow)
        );
        assert_eq!(a.right().n_posts(), b.right().n_posts());
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&small_cfg());
        let b = generate(&small_cfg().with_seed(12345));
        // Permutations of 40 elements collide with probability ~1/40!.
        assert_ne!(a.sigma, b.sigma);
    }

    #[test]
    fn posts_have_checkin_and_timestamp() {
        let w = generate(&small_cfg());
        for p in 0..w.left().n_posts() {
            let pid = hetnet::PostId::from_index(p);
            assert_eq!(w.left().locations_of(pid).count(), 1);
            assert_eq!(w.left().timestamps_of(pid).count(), 1);
            assert!(w.left().author_of(pid).is_some());
        }
    }

    #[test]
    fn anchored_pairs_share_habit_checkins_more_than_random() {
        // The core signal: count joint (loc, ts) key overlaps for anchored
        // vs mismatched pairs.
        use std::collections::HashSet;
        let cfg = GeneratorConfig {
            n_shared_users: 60,
            profile_noise: 0.2,
            posts_per_user_left: 12.0,
            posts_per_user_right: 8.0,
            ..Default::default()
        };
        let w = generate(&cfg);
        let keys = |net: &hetnet::HetNet, u: usize| -> HashSet<(usize, usize)> {
            net.posts_of(hetnet::UserId::from_index(u))
                .map(|p| {
                    let l = net.locations_of(p).next().unwrap().index();
                    let t = net.timestamps_of(p).next().unwrap().index();
                    (l, t)
                })
                .collect()
        };
        let mut aligned_overlap = 0usize;
        let mut shifted_overlap = 0usize;
        for i in 0..60 {
            let kl = keys(w.left(), i);
            let kr = keys(w.right(), w.sigma[i]);
            aligned_overlap += kl.intersection(&kr).count();
            let wrong = w.sigma[(i + 7) % 60];
            let kw = keys(w.right(), wrong);
            shifted_overlap += kl.intersection(&kw).count();
        }
        assert!(
            aligned_overlap > 2 * shifted_overlap.max(1),
            "aligned {aligned_overlap} vs shifted {shifted_overlap}: habit signal too weak"
        );
    }

    #[test]
    fn anchored_pairs_share_neighbors_more_than_random() {
        let cfg = GeneratorConfig {
            n_shared_users: 60,
            keep_left: 0.9,
            keep_right: 0.7,
            ..Default::default()
        };
        let w = generate(&cfg);
        use std::collections::HashSet;
        // Compare followee overlap through sigma for aligned vs shifted pairs.
        let mut aligned = 0usize;
        let mut shifted = 0usize;
        for i in 0..60 {
            let fl: HashSet<usize> = w
                .left()
                .followees(hetnet::UserId::from_index(i))
                .filter(|v| v.index() < 60)
                .map(|v| w.sigma[v.index()])
                .collect();
            let fr: HashSet<usize> = w
                .right()
                .followees(hetnet::UserId::from_index(w.sigma[i]))
                .map(|v| v.index())
                .collect();
            aligned += fl.intersection(&fr).count();
            let fr_wrong: HashSet<usize> = w
                .right()
                .followees(hetnet::UserId::from_index(w.sigma[(i + 11) % 60]))
                .map(|v| v.index())
                .collect();
            shifted += fl.intersection(&fr_wrong).count();
        }
        assert!(
            aligned > 2 * shifted.max(1),
            "aligned {aligned} vs shifted {shifted}: neighborhood signal too weak"
        );
    }

    #[test]
    fn words_generated_when_enabled() {
        let cfg = GeneratorConfig {
            n_shared_users: 20,
            n_words: 50,
            words_per_post: 3,
            ..Default::default()
        };
        let w = generate(&cfg);
        let any_words = (0..w.left().n_posts())
            .any(|p| w.left().words_of(hetnet::PostId::from_index(p)).count() > 0);
        assert!(any_words);
    }
}
