//! Follow-graph generation.
//!
//! A latent directed social graph is grown over the shared users with a
//! preferential-attachment flavour, then *subsampled* into each network
//! (probability `keep_left` / `keep_right` per edge). Anchored accounts
//! therefore agree on a large, tunable fraction of their neighborhoods —
//! the signal behind meta paths P1–P4 — without being identical. Per-network
//! noise edges and the extra (non-shared) users dilute that signal.

use crate::config::GeneratorConfig;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::HashSet;

/// A directed edge list over `0..n` users.
#[derive(Debug, Clone, Default)]
pub struct EdgeList {
    /// Distinct directed edges `(source, target)`.
    pub edges: Vec<(usize, usize)>,
}

/// Samples a target index with preferential attachment: with probability
/// `pa_strength` proportional to `indeg + 1`, otherwise uniform. `exclude`
/// is the source (no self-loop).
fn sample_target(
    rng: &mut StdRng,
    indeg: &[usize],
    total_indeg: usize,
    pa_strength: f64,
    exclude: usize,
) -> usize {
    let n = indeg.len();
    loop {
        let t = if rng.gen::<f64>() < pa_strength && total_indeg > 0 {
            // Weighted sample by (indeg + 1) via inverse CDF walk; n is small
            // enough in practice (≤ tens of thousands) that the occasional
            // O(n) walk is dwarfed by SpGEMM later in the pipeline.
            let mut ticket = rng.gen_range(0..total_indeg + n);
            let mut chosen = n - 1;
            for (i, &d) in indeg.iter().enumerate() {
                let w = d + 1;
                if ticket < w {
                    chosen = i;
                    break;
                }
                ticket -= w;
            }
            chosen
        } else {
            rng.gen_range(0..n)
        };
        if t != exclude {
            return t;
        }
    }
}

/// The latent community of shared user `u` when `0..n` users are split
/// into `k` contiguous, near-equal blocks. Every community is non-empty
/// when `k ≤ n`; the mapping is what [`latent_graph`] biases edges with
/// and what ground-truth-aware tests compare detected partitions against.
pub fn community_of(u: usize, n: usize, k: usize) -> usize {
    debug_assert!(u < n && k > 0);
    u * k / n
}

/// The `[lo, hi)` user range of community `c` under [`community_of`].
fn community_range(c: usize, n: usize, k: usize) -> (usize, usize) {
    let lo = (c * n).div_ceil(k);
    let hi = ((c + 1) * n).div_ceil(k);
    (lo, hi)
}

/// Samples an in-community target: preferential attachment restricted to
/// the community's `[lo, hi)` slice (walk cost `O(hi - lo)`, not `O(n)`),
/// uniform within the slice otherwise.
fn sample_target_within(
    rng: &mut StdRng,
    indeg: &[usize],
    lo: usize,
    hi: usize,
    slice_indeg: usize,
    pa_strength: f64,
    exclude: usize,
) -> usize {
    let m = hi - lo;
    loop {
        let t = if rng.gen::<f64>() < pa_strength && slice_indeg > 0 {
            let mut ticket = rng.gen_range(0..slice_indeg + m);
            let mut chosen = hi - 1;
            for (i, &d) in indeg[lo..hi].iter().enumerate() {
                let w = d + 1;
                if ticket < w {
                    chosen = lo + i;
                    break;
                }
                ticket -= w;
            }
            chosen
        } else {
            rng.gen_range(lo..hi)
        };
        if t != exclude {
            return t;
        }
    }
}

/// Grows the latent directed graph over `n` shared users with mean
/// out-degree `cfg.base_degree`.
///
/// With `cfg.n_communities > 1` and a positive `cfg.community_bias`, each
/// edge stays inside its source's community with that probability
/// (in-community targets preferential-attachment weighted over the
/// community slice); escaping edges pick a uniform global target. With
/// communities disabled the function draws **exactly** the pre-knob
/// random sequence.
pub fn latent_graph(rng: &mut StdRng, cfg: &GeneratorConfig) -> EdgeList {
    let n = cfg.n_shared_users;
    let mut seen: HashSet<(usize, usize)> = HashSet::new();
    let mut edges = Vec::new();
    let mut indeg = vec![0usize; n];
    let mut total_indeg = 0usize;
    if n < 2 {
        return EdgeList { edges };
    }
    let k = cfg.n_communities.min(n);
    let communities_on = k > 1 && cfg.community_bias > 0.0;
    // Per-community in-degree totals so the restricted PA walk has its
    // normalizer without rescanning the slice.
    let mut comm_indeg = vec![0usize; if communities_on { k } else { 0 }];
    for u in 0..n {
        let d = sample_degree(rng, cfg.base_degree).min(n - 1);
        let mut attempts = 0;
        let mut added = 0;
        while added < d && attempts < 8 * d + 16 {
            attempts += 1;
            let t = if communities_on {
                let c = community_of(u, n, k);
                let (lo, hi) = community_range(c, n, k);
                if hi - lo >= 2 && rng.gen::<f64>() < cfg.community_bias {
                    sample_target_within(rng, &indeg, lo, hi, comm_indeg[c], cfg.pa_strength, u)
                } else {
                    // Escape edge: uniform global target. The O(n) global
                    // PA walk is skipped on purpose — it is what makes
                    // community-free generation quadratic at 100× scales.
                    loop {
                        let t = rng.gen_range(0..n);
                        if t != u {
                            break t;
                        }
                    }
                }
            } else {
                sample_target(rng, &indeg, total_indeg, cfg.pa_strength, u)
            };
            if seen.insert((u, t)) {
                edges.push((u, t));
                indeg[t] += 1;
                total_indeg += 1;
                if communities_on {
                    comm_indeg[community_of(t, n, k)] += 1;
                }
                added += 1;
            }
        }
    }
    EdgeList { edges }
}

/// Approximately geometric degree with the requested mean (support ≥ 1 when
/// `mean ≥ 1`, so nobody is an isolate by construction).
fn sample_degree(rng: &mut StdRng, mean: f64) -> usize {
    if mean <= 0.0 {
        return 0;
    }
    // Geometric with success prob 1/mean has mean `mean`; add the +1 shift
    // so the distribution starts at 1 and keep the mean by using mean-1.
    let shifted = (mean - 1.0).max(0.0);
    // srclint: allow(float_eq, reason = "shifted comes from max(0.0); exact 0.0 is the clamp sentinel")
    if shifted == 0.0 {
        return 1;
    }
    let p = 1.0 / (shifted + 1.0);
    let mut k = 1usize;
    // Cap to avoid pathological tails in tiny test configs.
    let cap = (8.0 * mean).ceil() as usize + 2;
    while k < cap && rng.gen::<f64>() > p {
        k += 1;
    }
    k
}

/// Materializes one network's follow edges:
/// * each latent edge survives with probability `keep` (both endpoints are
///   shared users, mapped through `map_user`);
/// * `noise_edge_frac` extra random edges are added among **all** users of
///   the network;
/// * each extra (non-shared) user receives `extra_degree` random edges.
pub fn materialize_network(
    rng: &mut StdRng,
    latent: &EdgeList,
    keep: f64,
    map_user: &dyn Fn(usize) -> usize,
    n_total_users: usize,
    cfg: &GeneratorConfig,
    n_shared: usize,
) -> EdgeList {
    let mut seen: HashSet<(usize, usize)> = HashSet::new();
    let mut edges = Vec::new();
    for &(u, v) in &latent.edges {
        if rng.gen::<f64>() < keep {
            let e = (map_user(u), map_user(v));
            if e.0 != e.1 && seen.insert(e) {
                edges.push(e);
            }
        }
    }
    if n_total_users >= 2 {
        // Per-network noise edges among all users.
        let n_noise = ((edges.len() as f64) * cfg.noise_edge_frac).round() as usize;
        let mut added = 0;
        let mut attempts = 0;
        while added < n_noise && attempts < 10 * n_noise + 32 {
            attempts += 1;
            let u = rng.gen_range(0..n_total_users);
            let v = rng.gen_range(0..n_total_users);
            if u != v && seen.insert((u, v)) {
                edges.push((u, v));
                added += 1;
            }
        }
        // Extra users get their own random neighborhoods.
        for u in n_shared..n_total_users {
            let d = sample_degree(rng, cfg.extra_degree).min(n_total_users - 1);
            let mut added = 0;
            let mut attempts = 0;
            while added < d && attempts < 8 * d + 16 {
                attempts += 1;
                let v = rng.gen_range(0..n_total_users);
                if u != v && seen.insert((u, v)) {
                    edges.push((u, v));
                    added += 1;
                }
            }
        }
    }
    EdgeList { edges }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    fn cfg() -> GeneratorConfig {
        GeneratorConfig {
            n_shared_users: 50,
            ..Default::default()
        }
    }

    #[test]
    fn latent_graph_has_roughly_requested_degree() {
        let c = cfg();
        let g = latent_graph(&mut rng(), &c);
        let mean = g.edges.len() as f64 / c.n_shared_users as f64;
        assert!(
            mean > c.base_degree * 0.4 && mean < c.base_degree * 2.0,
            "mean degree {mean} far from target {}",
            c.base_degree
        );
    }

    #[test]
    fn latent_graph_has_no_self_loops_or_duplicates() {
        let g = latent_graph(&mut rng(), &cfg());
        let mut seen = HashSet::new();
        for &(u, v) in &g.edges {
            assert_ne!(u, v, "self loop");
            assert!(seen.insert((u, v)), "duplicate edge");
        }
    }

    #[test]
    fn degenerate_sizes_do_not_panic() {
        let c = GeneratorConfig {
            n_shared_users: 1,
            ..Default::default()
        };
        let g = latent_graph(&mut rng(), &c);
        assert!(g.edges.is_empty());
    }

    #[test]
    fn materialization_keeps_a_fraction() {
        let c = cfg();
        let latent = latent_graph(&mut rng(), &c);
        let mut r = rng();
        let kept = materialize_network(
            &mut r,
            &latent,
            0.5,
            &|u| u,
            c.n_shared_users,
            &GeneratorConfig {
                noise_edge_frac: 0.0,
                extra_degree: 0.0,
                ..c.clone()
            },
            c.n_shared_users,
        );
        let frac = kept.edges.len() as f64 / latent.edges.len() as f64;
        assert!(frac > 0.3 && frac < 0.7, "kept fraction {frac}");
    }

    #[test]
    fn keep_one_preserves_all_edges() {
        let c = cfg();
        let latent = latent_graph(&mut rng(), &c);
        let mut r = rng();
        let kept = materialize_network(
            &mut r,
            &latent,
            1.0,
            &|u| u,
            c.n_shared_users,
            &GeneratorConfig {
                noise_edge_frac: 0.0,
                extra_degree: 0.0,
                ..c.clone()
            },
            c.n_shared_users,
        );
        assert_eq!(kept.edges.len(), latent.edges.len());
    }

    #[test]
    fn extra_users_receive_edges() {
        let c = cfg();
        let latent = EdgeList::default();
        let mut r = rng();
        let net = materialize_network(&mut r, &latent, 1.0, &|u| u, 60, &c, 50);
        // Users 50..60 should have some outgoing edges.
        assert!(net.edges.iter().any(|&(u, _)| u >= 50));
    }

    #[test]
    fn communities_are_contiguous_and_cover() {
        let (n, k) = (103, 7);
        let mut sizes = vec![0usize; k];
        let mut last = 0;
        for u in 0..n {
            let c = community_of(u, n, k);
            assert!(c >= last, "community ids must be monotone in u");
            last = c;
            sizes[c] += 1;
        }
        assert!(sizes.iter().all(|&s| s > 0), "empty community: {sizes:?}");
    }

    #[test]
    fn community_bias_concentrates_edges_within_communities() {
        let c = GeneratorConfig {
            n_shared_users: 200,
            n_communities: 8,
            community_bias: 0.9,
            ..Default::default()
        };
        let g = latent_graph(&mut rng(), &c);
        let inside = g
            .edges
            .iter()
            .filter(|&&(u, v)| community_of(u, 200, 8) == community_of(v, 200, 8))
            .count();
        let frac = inside as f64 / g.edges.len() as f64;
        // Uniform targets would land inside ~1/8 of the time.
        assert!(frac > 0.6, "in-community fraction {frac}");
    }

    #[test]
    fn disabled_communities_draw_the_identical_sequence() {
        let base = cfg();
        let zero_bias = GeneratorConfig {
            n_communities: 6,
            community_bias: 0.0,
            ..base.clone()
        };
        let one_comm = GeneratorConfig {
            n_communities: 1,
            community_bias: 0.9,
            ..base.clone()
        };
        let reference = latent_graph(&mut rng(), &base);
        assert_eq!(latent_graph(&mut rng(), &zero_bias).edges, reference.edges);
        assert_eq!(latent_graph(&mut rng(), &one_comm).edges, reference.edges);
    }

    #[test]
    fn degree_sampler_mean_is_close() {
        let mut r = rng();
        let n = 4000;
        let total: usize = (0..n).map(|_| sample_degree(&mut r, 10.0)).sum();
        let mean = total as f64 / n as f64;
        assert!(mean > 8.0 && mean < 12.5, "sampled mean {mean}");
    }

    #[test]
    fn zero_mean_degree_gives_zero() {
        let mut r = rng();
        assert_eq!(sample_degree(&mut r, 0.0), 0);
    }
}
