//! Generator configuration.

/// All knobs of the synthetic world. See the crate docs for how each knob
/// maps to a feature-family signal. Defaults produce a small but non-trivial
/// world suitable for tests; the presets in [`crate::presets`] mirror the
/// paper's Table II proportions at configurable scale.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorConfig {
    /// Master seed; the entire world is a pure function of it.
    pub seed: u64,
    /// Users present in both networks (ground-truth anchors).
    pub n_shared_users: usize,
    /// Users present only in the left network.
    pub n_extra_left: usize,
    /// Users present only in the right network.
    pub n_extra_right: usize,
    /// Size of the shared location universe.
    pub n_locations: usize,
    /// Size of the shared (discretized) timestamp universe.
    pub n_timestamps: usize,
    /// Size of the shared vocabulary (0 disables word attributes).
    pub n_words: usize,

    /// Mean out-degree of the latent social graph over shared users.
    pub base_degree: f64,
    /// Probability a latent edge materializes in the left network.
    pub keep_left: f64,
    /// Probability a latent edge materializes in the right network.
    pub keep_right: f64,
    /// Per-network random extra follow edges, as a fraction of kept edges.
    pub noise_edge_frac: f64,
    /// Mean out-degree of the extra (non-shared) users in each network.
    pub extra_degree: f64,
    /// Preferential-attachment mixing weight (0 = uniform targets,
    /// 1 = fully degree-proportional).
    pub pa_strength: f64,
    /// Number of latent communities the shared users are split into
    /// (contiguous, near-equal blocks). `0` or `1` disables community
    /// structure entirely — the generator then draws **exactly** the same
    /// random sequence as before the knob existed, so existing presets
    /// and seeds reproduce bit-identically.
    pub n_communities: usize,
    /// Probability a latent follow edge stays inside its source's
    /// community (when communities are enabled). In-community targets are
    /// preferential-attachment weighted over the community only, which
    /// keeps target sampling `O(n / n_communities)` — the property that
    /// makes 100×–1000× table-IV scales generable.
    pub community_bias: f64,

    /// Mean number of posts per user in the left network.
    pub posts_per_user_left: f64,
    /// Mean number of posts per user in the right network (Foursquare-style
    /// networks are less chatty).
    pub posts_per_user_right: f64,
    /// Number of habitual (location, timestamp) pairs per user profile.
    pub n_habits: usize,
    /// Number of shared habit archetypes (communities whose members frequent
    /// the same venues at the same times). `0` disables archetypes. Without
    /// them, uniformly sampled negative pairs share nothing and the task is
    /// unrealistically easy — real networks are full of *confusable* users,
    /// which is what the active query strategy feeds on.
    pub n_archetypes: usize,
    /// Fraction of each profile's habits drawn from the user's archetype
    /// pool (the rest are personal).
    pub archetype_mix: f64,
    /// Probability that a post ignores the profile and draws location and
    /// timestamp independently from the global popularity distributions.
    /// This is what creates "dislocated" coincidences (paper §III-B.2).
    pub profile_noise: f64,
    /// Zipf-like skew of global location popularity (0 = uniform).
    pub popularity_skew: f64,
    /// Words sampled per post when `n_words > 0`.
    pub words_per_post: usize,
    /// Words in each user's topical vocabulary.
    pub n_profile_words: usize,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            seed: 7,
            n_shared_users: 100,
            n_extra_left: 40,
            n_extra_right: 45,
            n_locations: 120,
            n_timestamps: 80,
            n_words: 0,
            base_degree: 10.0,
            keep_left: 0.8,
            keep_right: 0.6,
            noise_edge_frac: 0.15,
            extra_degree: 6.0,
            pa_strength: 0.6,
            n_communities: 0,
            community_bias: 0.0,
            posts_per_user_left: 10.0,
            posts_per_user_right: 6.0,
            n_habits: 4,
            n_archetypes: 8,
            archetype_mix: 0.5,
            profile_noise: 0.3,
            popularity_skew: 0.8,
            words_per_post: 0,
            n_profile_words: 8,
        }
    }
}

impl GeneratorConfig {
    /// Total users in the left network.
    pub fn n_left_users(&self) -> usize {
        self.n_shared_users + self.n_extra_left
    }

    /// Total users in the right network.
    pub fn n_right_users(&self) -> usize {
        self.n_shared_users + self.n_extra_right
    }

    /// Returns a copy with a different seed (for fold-rotation style reuse).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sanity-checks ranges; called by the generator.
    ///
    /// # Panics
    /// Panics with a descriptive message on nonsensical settings — these are
    /// programming errors in experiment setup, not runtime conditions.
    pub fn validate(&self) {
        assert!(self.n_shared_users > 0, "need at least one shared user");
        assert!(self.n_locations > 0, "need a non-empty location universe");
        assert!(self.n_timestamps > 0, "need a non-empty timestamp universe");
        for (name, p) in [
            ("keep_left", self.keep_left),
            ("keep_right", self.keep_right),
            ("profile_noise", self.profile_noise),
            ("pa_strength", self.pa_strength),
            ("archetype_mix", self.archetype_mix),
            ("community_bias", self.community_bias),
        ] {
            assert!((0.0..=1.0).contains(&p), "{name} must be in [0,1], got {p}");
        }
        assert!(self.base_degree >= 0.0 && self.extra_degree >= 0.0);
        assert!(self.posts_per_user_left >= 0.0 && self.posts_per_user_right >= 0.0);
        if self.n_words == 0 {
            assert_eq!(
                self.words_per_post, 0,
                "words_per_post requires a non-empty vocabulary"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates() {
        GeneratorConfig::default().validate();
    }

    #[test]
    fn totals() {
        let c = GeneratorConfig::default();
        assert_eq!(c.n_left_users(), 140);
        assert_eq!(c.n_right_users(), 145);
    }

    #[test]
    fn with_seed_changes_only_seed() {
        let c = GeneratorConfig::default();
        let c2 = c.clone().with_seed(99);
        assert_eq!(c2.seed, 99);
        assert_eq!(c2.n_shared_users, c.n_shared_users);
    }

    #[test]
    #[should_panic(expected = "shared user")]
    fn rejects_zero_users() {
        GeneratorConfig {
            n_shared_users: 0,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "keep_left")]
    fn rejects_bad_probability() {
        GeneratorConfig {
            keep_left: 1.5,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "community_bias")]
    fn rejects_bad_community_bias() {
        GeneratorConfig {
            n_communities: 4,
            community_bias: 1.5,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "vocabulary")]
    fn rejects_words_without_vocab() {
        GeneratorConfig {
            n_words: 0,
            words_per_post: 2,
            ..Default::default()
        }
        .validate();
    }
}
