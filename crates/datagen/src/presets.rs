//! Ready-made configurations.
//!
//! `paper_scale` mirrors the *proportions* of the paper's Table II
//! (Foursquare + Twitter crawl) at a configurable user count. The absolute
//! post volume of Twitter (9.49M tweets for 5,223 users ≈ 1,817 per user) is
//! capped — feature signal saturates long before that, and DESIGN.md
//! documents the substitution. Follow densities and the shared-user fraction
//! (3,282 / 5,223 ≈ 63%) are preserved.

use crate::config::GeneratorConfig;

/// Minimal world for unit tests: runs in milliseconds.
pub fn tiny(seed: u64) -> GeneratorConfig {
    GeneratorConfig {
        seed,
        n_shared_users: 30,
        n_extra_left: 8,
        n_extra_right: 10,
        n_locations: 60,
        n_timestamps: 40,
        n_words: 0,
        base_degree: 8.0,
        keep_left: 0.8,
        keep_right: 0.6,
        noise_edge_frac: 0.1,
        extra_degree: 4.0,
        pa_strength: 0.5,
        n_communities: 0,
        community_bias: 0.0,
        posts_per_user_left: 8.0,
        posts_per_user_right: 5.0,
        n_habits: 3,
        n_archetypes: 6,
        archetype_mix: 0.6,
        profile_noise: 0.35,
        popularity_skew: 0.8,
        words_per_post: 0,
        n_profile_words: 6,
    }
}

/// Small world for integration tests and the quickstart example.
pub fn small(seed: u64) -> GeneratorConfig {
    GeneratorConfig {
        seed,
        n_shared_users: 120,
        n_extra_left: 45,
        n_extra_right: 50,
        n_locations: 120,
        n_timestamps: 60,
        n_words: 0,
        base_degree: 12.0,
        keep_left: 0.8,
        keep_right: 0.6,
        noise_edge_frac: 0.15,
        extra_degree: 6.0,
        pa_strength: 0.6,
        n_communities: 0,
        community_bias: 0.0,
        posts_per_user_left: 8.0,
        posts_per_user_right: 5.0,
        n_habits: 2,
        n_archetypes: 10,
        archetype_mix: 0.8,
        profile_noise: 0.5,
        popularity_skew: 1.1,
        words_per_post: 0,
        n_profile_words: 8,
    }
}

/// Table II proportions at `n_shared` anchored users.
///
/// Ratios preserved from the paper's crawl:
/// * shared fraction: 3,282 anchors for 5,223 / 5,392 users →
///   extra_left ≈ 0.59 · shared, extra_right ≈ 0.64 · shared;
/// * follow density: Twitter 164,920 / 5,223 ≈ 31.6 out-links per user,
///   Foursquare 76,972 / 5,392 ≈ 14.3 — we derive the latent degree and
///   keep-probabilities to land near those per-network densities;
/// * activity asymmetry: Twitter posts ≫ Foursquare tips (capped at 24 vs 9
///   posts per user);
/// * attribute universe: locations ≈ 0.8 · posts-right (Foursquare had
///   38,921 venues for 48,756 tips).
pub fn paper_scale(n_shared: usize, seed: u64) -> GeneratorConfig {
    let n_extra_left = (n_shared as f64 * 0.59).round() as usize;
    let n_extra_right = (n_shared as f64 * 0.64).round() as usize;
    let posts_right = 9.0;
    let n_right_users = n_shared + n_extra_right;
    let n_locations = ((n_right_users as f64 * posts_right) * 0.8).round() as usize;
    GeneratorConfig {
        seed,
        n_shared_users: n_shared,
        n_extra_left,
        n_extra_right,
        n_locations: n_locations.max(100),
        n_timestamps: (n_locations / 2).max(60),
        n_words: 0,
        // Latent degree 36 with keep 0.88/0.40 ≈ 31.6 / 14.3 per-user density.
        base_degree: 36.0,
        keep_left: 0.88,
        keep_right: 0.40,
        noise_edge_frac: 0.12,
        extra_degree: 10.0,
        pa_strength: 0.7,
        n_communities: 0,
        community_bias: 0.0,
        posts_per_user_left: 24.0,
        posts_per_user_right: posts_right,
        n_habits: 3,
        n_archetypes: 20,
        archetype_mix: 0.75,
        profile_noise: 0.5,
        popularity_skew: 0.9,
        words_per_post: 0,
        n_profile_words: 10,
    }
}

/// Scale-free, community-structured world for the partition-sharded
/// pipeline — the preset that reaches 100×–1000× beyond the paper's
/// Table IV (≈3.3k anchors), where the partition crossover is
/// demonstrable.
///
/// Built on [`paper_scale`]'s Table II proportions, with three changes
/// that keep generation (and the global reference pipeline it is compared
/// against) tractable as `n_shared` grows into the millions:
/// * users split into `n_communities` latent blocks, `community_bias`
///   0.85 — in-community targets are preferential-attachment weighted
///   *within the community slice*, so target sampling is
///   `O(n / n_communities)` instead of the global `O(n)` walk;
/// * per-user activity trimmed (degree 16, posts 6/3) — the signal
///   saturates far below Twitter's raw post volume, and at 100× scale the
///   full Table II activity would dominate wall-clock without changing
///   the crossover story;
/// * fewer noise edges (0.05), since cross-community escapes already
///   supply inter-block confusion.
///
/// `community_scale(n, k, seed)` with `k ≈ n / 650` keeps community sizes
/// near the paper's whole-network scale, so each shard is itself a
/// table-IV-sized alignment problem.
pub fn community_scale(n_shared: usize, n_communities: usize, seed: u64) -> GeneratorConfig {
    GeneratorConfig {
        n_communities,
        community_bias: 0.85,
        base_degree: 16.0,
        posts_per_user_left: 6.0,
        posts_per_user_right: 3.0,
        noise_edge_frac: 0.05,
        extra_degree: 6.0,
        ..paper_scale(n_shared, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate;

    #[test]
    fn presets_validate() {
        tiny(1).validate();
        small(1).validate();
        paper_scale(200, 1).validate();
        community_scale(400, 8, 1).validate();
    }

    #[test]
    fn community_scale_worlds_have_block_structure() {
        let cfg = community_scale(240, 6, 11);
        let w = generate(&cfg);
        // In-community follow fraction among shared users far exceeds the
        // uniform 1/6 baseline (shared users are 0..240 on the left).
        let follow = w
            .left()
            .adjacency(hetnet::LinkKind::Follow, hetnet::Direction::Forward);
        let (mut inside, mut total) = (0usize, 0usize);
        for u in 0..240 {
            for (v, _) in follow.row(u) {
                if v < 240 {
                    total += 1;
                    if crate::follow::community_of(u, 240, 6)
                        == crate::follow::community_of(v, 240, 6)
                    {
                        inside += 1;
                    }
                }
            }
        }
        let frac = inside as f64 / total.max(1) as f64;
        assert!(frac > 0.5, "in-community follow fraction {frac}");
    }

    #[test]
    fn tiny_generates_quickly_and_fully() {
        let w = generate(&tiny(3));
        assert_eq!(w.truth().len(), 30);
        assert!(w.left().n_posts() > 0);
        assert!(w.right().n_posts() > 0);
    }

    #[test]
    fn paper_scale_matches_table2_proportions() {
        let cfg = paper_scale(300, 5);
        // Shared fraction ≈ 63% of each side.
        let frac_left = 300.0 / cfg.n_left_users() as f64;
        assert!((frac_left - 0.629).abs() < 0.02, "left share {frac_left}");
        let frac_right = 300.0 / cfg.n_right_users() as f64;
        assert!(
            (frac_right - 0.609).abs() < 0.02,
            "right share {frac_right}"
        );
        // Asymmetry in activity and follow retention.
        assert!(cfg.posts_per_user_left > 2.0 * cfg.posts_per_user_right);
        assert!(cfg.keep_left > cfg.keep_right);
    }

    #[test]
    fn paper_scale_generates_denser_left_follow_graph() {
        let w = generate(&paper_scale(150, 9));
        let left_density =
            w.left().link_count(hetnet::LinkKind::Follow) as f64 / w.left().n_users() as f64;
        let right_density =
            w.right().link_count(hetnet::LinkKind::Follow) as f64 / w.right().n_users() as f64;
        assert!(
            left_density > 1.5 * right_density,
            "left {left_density} vs right {right_density}"
        );
    }
}
