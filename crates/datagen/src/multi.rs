//! Multi-network worlds (the paper's §II extension: "simple extensions of
//! the model can be applied to multiple (more than two) aligned social
//! networks as well").
//!
//! `k` networks are materialized from one latent social world: every network
//! subsamples the same latent follow graph and every shared user keeps one
//! habit profile across all of their accounts. Ground truth is a permutation
//! per network, which induces pairwise anchor sets for every network pair —
//! and, crucially, *transitively consistent* ones, which is what the
//! multi-network consistency checker in `eval::multi` verifies against.

use crate::activity::{sample_archetypes, sample_profile, PopularitySampler, Profile};
use crate::config::GeneratorConfig;
use crate::follow::{latent_graph, materialize_network};
use crate::generator::populate_posts;
use hetnet::{AnchorLink, AnchorSet, HetNet, HetNetBuilder, UserId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A collection of `k ≥ 2` aligned networks over one shared population.
#[derive(Debug, Clone)]
pub struct MultiWorld {
    /// The networks, index `0..k`.
    pub nets: Vec<HetNet>,
    /// Per-network permutation: shared user `s` owns account `sigma[n][s]`
    /// in network `n`.
    pub sigmas: Vec<Vec<usize>>,
    /// Number of shared users.
    pub n_shared: usize,
    /// Configuration used (per-network knobs follow the left-network
    /// settings; activity alternates left/right rates to keep asymmetry).
    pub config: GeneratorConfig,
}

impl MultiWorld {
    /// Number of networks.
    pub fn k(&self) -> usize {
        self.nets.len()
    }

    /// The ground-truth anchor set between networks `a` and `b`.
    ///
    /// # Panics
    /// Panics when `a == b` or an index is out of range.
    pub fn truth_between(&self, a: usize, b: usize) -> AnchorSet {
        assert!(a != b, "a pair needs two distinct networks");
        let sa = &self.sigmas[a];
        let sb = &self.sigmas[b];
        AnchorSet::try_new(
            (0..self.n_shared)
                .map(|s| AnchorLink::new(UserId::from_index(sa[s]), UserId::from_index(sb[s])))
                .collect(),
        )
        .expect("permutations induce one-to-one anchor sets")
    }

    /// All unordered network pairs `(a, b)` with `a < b`.
    pub fn pairs(&self) -> Vec<(usize, usize)> {
        let k = self.k();
        let mut out = Vec::with_capacity(k * (k - 1) / 2);
        for a in 0..k {
            for b in (a + 1)..k {
                out.push((a, b));
            }
        }
        out
    }
}

/// Generates `k` aligned networks. Network 0 plays the "left" role
/// (keep_left, posts_per_user_left); the others use the right-side rates.
///
/// # Panics
/// Panics when `k < 2`.
pub fn generate_multi(cfg: &GeneratorConfig, k: usize) -> MultiWorld {
    assert!(k >= 2, "a multi-world needs at least two networks");
    cfg.validate();
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x6d75_6c74);
    let n_shared = cfg.n_shared_users;

    // One latent social world.
    let latent = latent_graph(&mut rng, cfg);
    let loc_sampler = PopularitySampler::new(cfg.n_locations, cfg.popularity_skew);
    let ts_sampler = PopularitySampler::new(cfg.n_timestamps, 0.0);
    let word_sampler = if cfg.n_words > 0 {
        Some(PopularitySampler::new(cfg.n_words, cfg.popularity_skew))
    } else {
        None
    };
    let archetypes = sample_archetypes(&mut rng, cfg, &loc_sampler, &ts_sampler);
    let shared_profiles: Vec<Profile> = (0..n_shared)
        .map(|_| {
            let arch = if archetypes.is_empty() {
                None
            } else {
                Some(&archetypes[rng.gen_range(0..archetypes.len())])
            };
            sample_profile(
                &mut rng,
                cfg,
                &loc_sampler,
                &ts_sampler,
                word_sampler.as_ref(),
                arch,
            )
        })
        .collect();

    let mut nets = Vec::with_capacity(k);
    let mut sigmas = Vec::with_capacity(k);
    for n in 0..k {
        let (keep, posts, extra) = if n == 0 {
            (cfg.keep_left, cfg.posts_per_user_left, cfg.n_extra_left)
        } else {
            (cfg.keep_right, cfg.posts_per_user_right, cfg.n_extra_right)
        };
        let n_total = n_shared + extra;
        let mut sigma: Vec<usize> = (0..n_shared).collect();
        sigma.shuffle(&mut rng);
        let sigma_ref = sigma.clone();
        let edges = materialize_network(
            &mut rng,
            &latent,
            keep,
            &|u| sigma_ref[u],
            n_total,
            cfg,
            n_shared,
        );
        let mut builder = HetNetBuilder::new(
            format!("net{n}"),
            n_total,
            cfg.n_locations,
            cfg.n_timestamps,
            cfg.n_words,
        );
        for &(u, v) in &edges.edges {
            builder
                .add_follow(UserId::from_index(u), UserId::from_index(v))
                .expect("generator produced in-range users");
        }
        // Account sigma[s] uses shared profile s; build the inverse map.
        let mut inv = vec![usize::MAX; n_shared];
        for (s, &acct) in sigma.iter().enumerate() {
            inv[acct] = s;
        }
        populate_posts(
            &mut rng,
            &mut builder,
            n_total,
            n_shared,
            |acct| &shared_profiles[inv[acct]],
            posts,
            cfg,
            &loc_sampler,
            &ts_sampler,
            word_sampler.as_ref(),
            &archetypes,
        );
        nets.push(builder.build());
        sigmas.push(sigma);
    }

    MultiWorld {
        nets,
        sigmas,
        n_shared,
        config: cfg.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    fn world() -> MultiWorld {
        generate_multi(&presets::tiny(5), 3)
    }

    #[test]
    fn k_networks_are_generated() {
        let w = world();
        assert_eq!(w.k(), 3);
        assert_eq!(w.nets[0].n_users(), 38);
        assert_eq!(w.nets[1].n_users(), 40);
        assert_eq!(w.nets[2].n_users(), 40);
        assert_eq!(w.pairs(), vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn pairwise_truths_are_one_to_one_and_transitively_consistent() {
        let w = world();
        let t01 = w.truth_between(0, 1);
        let t12 = w.truth_between(1, 2);
        let t02 = w.truth_between(0, 2);
        assert_eq!(t01.len(), w.n_shared);
        // Compose 0→1 with 1→2 and compare against 0→2.
        use std::collections::HashMap;
        let map01: HashMap<u32, u32> = t01.iter().map(|a| (a.left.0, a.right.0)).collect();
        let map12: HashMap<u32, u32> = t12.iter().map(|a| (a.left.0, a.right.0)).collect();
        let map02: HashMap<u32, u32> = t02.iter().map(|a| (a.left.0, a.right.0)).collect();
        for (&u0, &u1) in &map01 {
            let via = map12[&u1];
            assert_eq!(map02[&u0], via, "triangle inconsistency in ground truth");
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let a = world();
        let b = world();
        assert_eq!(a.sigmas, b.sigmas);
        assert_eq!(a.nets[2].n_posts(), b.nets[2].n_posts());
    }

    #[test]
    fn profiles_are_shared_across_all_accounts() {
        // Anchored accounts in different networks co-check-in, regardless of
        // which pair is examined.
        use std::collections::HashSet;
        let w = generate_multi(
            &GeneratorConfig {
                profile_noise: 0.1,
                posts_per_user_left: 12.0,
                posts_per_user_right: 12.0,
                ..presets::tiny(9)
            },
            3,
        );
        let keys = |net: &HetNet, u: usize| -> HashSet<(usize, usize)> {
            net.posts_of(UserId::from_index(u))
                .map(|p| {
                    (
                        net.locations_of(p).next().unwrap().index(),
                        net.timestamps_of(p).next().unwrap().index(),
                    )
                })
                .collect()
        };
        let mut aligned = 0usize;
        let mut shifted = 0usize;
        for s in 0..w.n_shared {
            let k1 = keys(&w.nets[1], w.sigmas[1][s]);
            let k2 = keys(&w.nets[2], w.sigmas[2][s]);
            aligned += k1.intersection(&k2).count();
            let wrong = w.sigmas[2][(s + 3) % w.n_shared];
            shifted += k1.intersection(&keys(&w.nets[2], wrong)).count();
        }
        assert!(
            aligned > 2 * shifted.max(1),
            "aligned {aligned} vs shifted {shifted}"
        );
    }

    #[test]
    #[should_panic(expected = "at least two networks")]
    fn rejects_k_below_two() {
        generate_multi(&presets::tiny(1), 1);
    }

    #[test]
    #[should_panic(expected = "two distinct networks")]
    fn truth_requires_distinct_networks() {
        world().truth_between(1, 1);
    }
}
