//! # datagen — synthetic aligned heterogeneous social networks
//!
//! The paper evaluates on a proprietary Foursquare + Twitter crawl
//! (Table II) that cannot be redistributed. This crate is the documented
//! substitution (DESIGN.md §2): a **seeded generator** of two aligned
//! attributed heterogeneous networks whose signal structure exercises every
//! meta path and meta diagram of the paper:
//!
//! * a latent social graph over the *shared* users is subsampled into both
//!   networks, so anchored pairs have correlated (but not identical)
//!   neighborhoods → signal for P1–P4 and the Ψf² diagrams;
//! * each shared user owns a spatio-temporal *habit profile* — a set of
//!   (location, timestamp) pairs reused by **both** accounts — so anchored
//!   pairs co-check-in at the same place *and* time → signal for Ψa² (the
//!   meta-diagram-only feature), while `profile_noise` produces the paper's
//!   "dislocated" coincidences that fool P5/P6 but not Ψ2;
//! * non-anchored users draw independent profiles → negative pairs look
//!   similar only by chance.
//!
//! Everything is a pure function of [`GeneratorConfig::seed`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activity;
pub mod config;
pub mod follow;
pub mod generator;
pub mod multi;
pub mod presets;

pub use config::GeneratorConfig;
pub use generator::{generate, GeneratedWorld};
pub use multi::{generate_multi, MultiWorld};
