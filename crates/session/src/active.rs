//! The session-driven ActiveIter round loop.
//!
//! `ActiveIterModel::fit` optimizes against a *fixed* feature matrix; this
//! module is the incremental variant the session API exists for: after
//! every external query round, the anchors the oracle confirmed flow back
//! into the session ([`AlignmentSession::update_anchors`]), the features
//! are refreshed — by the `L·ΔA·R` delta path or, for reference, by a full
//! recount — and the loop resumes on the updated instance. The catalog is
//! fully counted exactly once, at session build; every subsequent round's
//! counting cost scales with the number of newly confirmed anchors.

use crate::stages::{AlignmentSession, Featurized, Fitted};
use crate::{AnchorEdge, SessionError};
use activeiter::driver::ActiveLoop;
use activeiter::model::FitReport;
use activeiter::{ModelConfig, Oracle, QueryStrategy};
use std::time::{Duration, Instant};

/// How confirmed anchors are folded back into the counts between rounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecountPolicy {
    /// Apply the sparse low-rank delta `C += L·ΔA·R` (default). Per-round
    /// cost scales with `|ΔA|`.
    #[default]
    Delta,
    /// Recount every anchor-dependent chain from the full merged anchor
    /// matrix. Bit-identical results at full-recount cost — the reference
    /// the delta path is benchmarked against.
    FullEachRound,
}

/// One external round's bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundStat {
    /// Oracle queries answered this round.
    pub queried: usize,
    /// Positives confirmed (= candidate anchors fed back into the counts).
    pub confirmed: usize,
    /// Genuinely new anchors merged (duplicates skipped).
    pub anchors_applied: usize,
    /// Wall-clock of the recount + feature refresh, under the chosen
    /// [`RecountPolicy`]. Zero when no anchor was confirmed.
    pub recount_time: Duration,
}

/// What a session-driven active run produced.
#[derive(Debug, Clone)]
pub struct ActiveRunReport {
    /// The final fit (labels, scores, queried links, convergence traces).
    pub fit: FitReport,
    /// Per-round bookkeeping, one entry per external query round.
    pub rounds: Vec<RoundStat>,
    /// The recount policy the run used.
    pub policy: RecountPolicy,
}

impl ActiveRunReport {
    /// Total wall-clock spent recounting across all rounds.
    pub fn total_recount_time(&self) -> Duration {
        self.rounds.iter().map(|r| r.recount_time).sum()
    }

    /// Total anchors merged across all rounds.
    pub fn total_anchors_applied(&self) -> usize {
        self.rounds.iter().map(|r| r.anchors_applied).sum()
    }
}

impl AlignmentSession<Featurized> {
    /// Runs the ActiveIter loop with per-round anchor feedback: converge,
    /// query `strategy`, apply the oracle's answers, fold the confirmed
    /// anchors back into the counts under `policy`, refresh the features,
    /// and repeat until the budget is spent or the candidate set runs dry.
    ///
    /// The two policies produce **bit-identical** fits (the delta recount
    /// is exact); only the per-round cost differs. The session's stats
    /// prove the economics: after a [`RecountPolicy::Delta`] run,
    /// `stats().full_counts == 1` — the build's count — no matter how many
    /// rounds ran.
    ///
    /// # Errors
    /// [`SessionError::Delta`] if a confirmed candidate's endpoints fall
    /// outside the user populations (impossible when candidates came from
    /// the same universe as the networks).
    pub fn run_active(
        mut self,
        labeled_pos: Vec<usize>,
        oracle: &dyn Oracle,
        strategy: &mut dyn QueryStrategy,
        config: &ModelConfig,
        policy: RecountPolicy,
    ) -> Result<(AlignmentSession<Fitted>, ActiveRunReport), SessionError> {
        let mut drv = ActiveLoop::new(self.instance(labeled_pos), config.clone());
        let mut rounds: Vec<RoundStat> = Vec::new();
        loop {
            drv.converge();
            if drv.remaining() == 0 {
                break;
            }
            let selection = drv.select_queries(strategy);
            if selection.is_empty() {
                break;
            }
            let queried = selection.len();
            let mut confirmed: Vec<AnchorEdge> = Vec::new();
            for idx in selection {
                let answer = oracle.label(idx);
                drv.apply_answer(idx, answer);
                if answer {
                    let (l, r) = self.stage.candidates[idx];
                    confirmed.push(AnchorEdge::new(l, r));
                }
            }
            // Fold the round's confirmed anchors back into the counts and
            // hand the refreshed features to the driver.
            let recount_start = Instant::now();
            let applied = if confirmed.is_empty() {
                0
            } else {
                match policy {
                    RecountPolicy::Delta => self.update_anchors(&confirmed)?,
                    RecountPolicy::FullEachRound => self.recount_anchors(&confirmed)?,
                }
            };
            if applied > 0 {
                drv.replace_features(&self.stage.features.x);
            }
            rounds.push(RoundStat {
                queried,
                confirmed: confirmed.len(),
                anchors_applied: applied,
                recount_time: recount_start.elapsed(),
            });
        }
        let fit = drv.finish();
        let report = ActiveRunReport {
            fit: fit.clone(),
            rounds,
            policy,
        };
        let fitted = AlignmentSession {
            catalog: self.catalog,
            counts: self.counts,
            threading: self.threading,
            stage: Fitted {
                featurized: self.stage,
                report: fit,
            },
        };
        Ok((fitted, report))
    }
}
