//! The builder and the typed session stages.

use crate::{AnchorEdge, SessionError};
use activeiter::driver::ActiveLoop;
use activeiter::{AlignmentInstance, ModelConfig, Oracle, QueryStrategy};
use hetnet::aligned::anchor_matrix;
use hetnet::{HetNet, UserId};
use metadiagram::delta::{CountMerge, DeltaCatalogCounts, DeltaOutcome, DeltaStats, StackRegions};
use metadiagram::{
    dice_proximity, dice_proximity_delta, gather_features, touch_is_dense, Catalog, FeatureMatrix,
    FeatureSet,
};
use sparsela::{CsrMatrix, Threading};

/// Configures and opens an [`AlignmentSession`].
///
/// The builder borrows the two networks only until
/// [`SessionBuilder::count`]; every later stage owns its artifacts outright
/// (anchor matrix, count matrices, factor chains, features, model) and
/// never touches the networks again.
///
/// ```
/// use session::SessionBuilder;
/// use metadiagram::FeatureSet;
/// use sparsela::Threading;
///
/// let world = datagen::generate(&datagen::presets::tiny(3));
/// let session = SessionBuilder::new(world.left(), world.right())
///     .anchors(world.truth().links()[..8].to_vec())
///     .feature_set(FeatureSet::MetaPathsOnly)
///     .threading(Threading::Threads(2))
///     .count()
///     .expect("generated networks share attribute universes");
/// assert_eq!(session.n_anchors(), 8);
/// assert_eq!(session.catalog().len(), 6);
/// ```
#[derive(Debug)]
pub struct SessionBuilder<'w> {
    left: &'w HetNet,
    right: &'w HetNet,
    anchors: Vec<AnchorEdge>,
    feature_set: FeatureSet,
    threading: Threading,
}

impl<'w> SessionBuilder<'w> {
    /// A builder over one aligned pair, with the full 31-feature catalog,
    /// no anchors and serial counting.
    pub fn new(left: &'w HetNet, right: &'w HetNet) -> Self {
        SessionBuilder {
            left,
            right,
            anchors: Vec::new(),
            feature_set: FeatureSet::Full,
            threading: Threading::Serial,
        }
    }

    /// The **training** anchors the counts start from. Passing ground-truth
    /// test anchors here leaks labels into the features — callers hold
    /// these to the training fold, exactly as with
    /// [`metadiagram::CountEngine::new`].
    #[must_use]
    pub fn anchors(mut self, anchors: Vec<AnchorEdge>) -> Self {
        self.anchors = anchors;
        self
    }

    /// Selects the feature-catalog slice (default: [`FeatureSet::Full`]).
    #[must_use]
    pub fn feature_set(mut self, set: FeatureSet) -> Self {
        self.feature_set = set;
        self
    }

    /// Worker threading for the initial catalog count and the feature
    /// gather. Results are bit-identical at any setting.
    #[must_use]
    pub fn threading(mut self, threading: Threading) -> Self {
        self.threading = threading;
        self
    }

    /// Performs the session's one full catalog count and harvests the
    /// `L`/`Lᵀ`/`R` factor chains that make later updates incremental.
    ///
    /// # Errors
    /// [`SessionError::Anchors`] when an anchor endpoint is out of range;
    /// [`SessionError::Engine`] when the networks disagree on a shared
    /// attribute universe.
    pub fn count(self) -> Result<AlignmentSession<Counted>, SessionError> {
        let anchor = anchor_matrix(self.left.n_users(), self.right.n_users(), &self.anchors)?;
        let catalog = Catalog::new(self.feature_set);
        let counts =
            DeltaCatalogCounts::build(self.left, self.right, anchor, &catalog, self.threading)?;
        Ok(AlignmentSession {
            catalog,
            counts,
            threading: self.threading,
            stage: Counted(()),
        })
    }
}

/// A staged alignment pipeline; see the [crate docs](crate) for the stage
/// diagram. `S` is one of [`Counted`], [`Featurized`], [`Fitted`].
///
/// Sessions are plain values: `Clone` duplicates every owned artifact, so
/// a caller can checkpoint a stage and explore updates (or fits) from it
/// without re-counting.
#[derive(Debug, Clone)]
pub struct AlignmentSession<S> {
    pub(crate) catalog: Catalog,
    pub(crate) counts: DeltaCatalogCounts,
    pub(crate) threading: Threading,
    pub(crate) stage: S,
}

/// How [`AlignmentSession::update_anchors`] refreshes the downstream Dice
/// proximity matrices after an incremental recount.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProximityRefresh {
    /// Rewrite only rows whose row sum changed and patch entries in
    /// columns whose column sum changed
    /// ([`metadiagram::dice_proximity_delta`] over the maintained
    /// [`sparsela::MarginSums`]) — the default. Per-round normalization
    /// cost scales with the touched rows/columns, not with `Σ nnz`.
    #[default]
    Delta,
    /// Re-normalize every changed count matrix from scratch (`O(nnz)` per
    /// matrix) — the reference path the delta refresh is benchmarked
    /// against. Results are bit-identical; only the cost differs.
    Full,
}

/// Stage 1: count matrices and factor chains exist; no features yet.
#[derive(Debug, Clone)]
pub struct Counted(());

impl Counted {
    /// Stage marker for sessions restored by [`crate::snapshot`].
    pub(crate) fn new() -> Self {
        Counted(())
    }
}

/// Stage 2: [`Counted`] plus per-feature proximity matrices and the dense
/// candidate feature matrix.
#[derive(Debug, Clone)]
pub struct Featurized {
    pub(crate) candidates: Vec<(UserId, UserId)>,
    pub(crate) proximities: Vec<CsrMatrix>,
    pub(crate) features: FeatureMatrix,
}

/// Stage 3: [`Featurized`] plus a fitted model.
#[derive(Debug, Clone)]
pub struct Fitted {
    pub(crate) featurized: Featurized,
    pub(crate) report: activeiter::FitReport,
}

impl<S> AlignmentSession<S> {
    /// The feature catalog this session counts.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The current (merged) anchor matrix.
    pub fn anchor(&self) -> &CsrMatrix {
        self.counts.anchor()
    }

    /// Number of anchors currently counted against.
    pub fn n_anchors(&self) -> usize {
        self.counts.n_anchors()
    }

    /// The count matrix of catalog feature `i`.
    pub fn count_of(&self, i: usize) -> &CsrMatrix {
        self.counts.catalog_count(i)
    }

    /// Work counters: how many full catalog counts this session has paid
    /// for (1 unless a caller explicitly asked for full recounts) and how
    /// many incremental updates it applied.
    pub fn stats(&self) -> DeltaStats {
        self.counts.stats()
    }

    /// The worker threading the session was built with.
    pub fn threading(&self) -> Threading {
        self.threading
    }

    /// Selects the delta hot-path policies for subsequent anchor updates:
    /// how incremental count deltas are merged into the stored matrices
    /// ([`CountMerge`]) and how stacked-diagram touch regions are derived
    /// ([`StackRegions`]).
    ///
    /// Both choices are pure tuning — every combination produces
    /// bit-identical counts, sums and regions-covered changes; only the
    /// work done per round differs. The defaults
    /// ([`CountMerge::Splice`], [`StackRegions::Exact`]) are the fast
    /// paths; the alternatives are the reference paths kept for the
    /// benchmark dimensions. Policies are runtime state: they are not
    /// persisted by [`crate::snapshot`], so reopened sessions start from
    /// the defaults.
    pub fn set_delta_policies(&mut self, merge: CountMerge, regions: StackRegions) {
        self.counts.set_count_merge(merge);
        self.counts.set_stack_regions(regions);
    }
}

impl AlignmentSession<Counted> {
    /// Applies newly confirmed anchors as the low-rank delta recount
    /// `C += L·ΔA·R`. Already-known links and in-batch duplicates are
    /// skipped; returns the number of genuinely new anchors merged.
    ///
    /// # Errors
    /// [`SessionError::Delta`] on out-of-range endpoints (nothing changes).
    pub fn update_anchors(&mut self, edges: &[AnchorEdge]) -> Result<usize, SessionError> {
        Ok(self.counts.update_anchors(edges)?.applied)
    }

    /// Advances to [`Featurized`]: computes the per-feature Dice proximity
    /// matrices and gathers the dense `candidates × catalog` feature
    /// matrix. Bit-identical to
    /// [`metadiagram::extract_features_par`] over the same anchors.
    pub fn featurize(self, candidates: Vec<(UserId, UserId)>) -> AlignmentSession<Featurized> {
        let proximities: Vec<CsrMatrix> = (0..self.catalog.len())
            .map(|i| dice_proximity(self.counts.catalog_count(i)))
            .collect();
        let names = self.catalog.names().into_iter().map(String::from).collect();
        let features = gather_features(&proximities, names, &candidates, self.threading);
        AlignmentSession {
            catalog: self.catalog,
            counts: self.counts,
            threading: self.threading,
            stage: Featurized {
                candidates,
                proximities,
                features,
            },
        }
    }
}

impl AlignmentSession<Featurized> {
    /// The candidate links the features describe (row order).
    pub fn candidates(&self) -> &[(UserId, UserId)] {
        &self.stage.candidates
    }

    /// The dense feature matrix (no bias column — models append their own).
    pub fn features(&self) -> &FeatureMatrix {
        &self.stage.features
    }

    /// The Dice proximity matrix of catalog feature `i`.
    pub fn proximity_of(&self, i: usize) -> &CsrMatrix {
        &self.stage.proximities[i]
    }

    /// Builds an [`AlignmentInstance`] over this session's candidates and
    /// features (bias appended), with `labeled_pos` as the labeled set.
    pub fn instance(&self, labeled_pos: Vec<usize>) -> AlignmentInstance {
        AlignmentInstance::new(
            self.stage.candidates.clone(),
            &self.stage.features.x,
            labeled_pos,
        )
    }

    /// Applies newly confirmed anchors incrementally and refreshes exactly
    /// the downstream artifacts that depend on them: the changed count
    /// matrices (`C += L·ΔA·R`), the touched rows/columns of their
    /// proximity matrices, and the affected feature *entries* — only
    /// candidates whose left user sits in a touched row or whose right
    /// user sits in a touched column are re-gathered. Anchor-free
    /// attribute features are untouched. Returns the number of genuinely
    /// new anchors merged.
    ///
    /// # Errors
    /// [`SessionError::Delta`] on out-of-range endpoints (nothing changes).
    pub fn update_anchors(&mut self, edges: &[AnchorEdge]) -> Result<usize, SessionError> {
        self.update_anchors_with(edges, ProximityRefresh::Delta)
    }

    /// [`AlignmentSession::update_anchors`] with an explicit
    /// [`ProximityRefresh`] policy. Both policies produce bit-identical
    /// proximities and features; [`ProximityRefresh::Full`] exists as the
    /// measured reference for the delta refresh (see the `session_delta`
    /// bench).
    ///
    /// # Errors
    /// [`SessionError::Delta`] on out-of-range endpoints (nothing changes).
    pub fn update_anchors_with(
        &mut self,
        edges: &[AnchorEdge],
        refresh: ProximityRefresh,
    ) -> Result<usize, SessionError> {
        let outcome = self.counts.update_anchors(edges)?;
        self.refresh(&outcome, refresh);
        Ok(outcome.applied)
    }

    /// Like [`AlignmentSession::update_anchors`], but recounts the changed
    /// chains **from the full merged anchor matrix** instead of applying
    /// the delta — the reference path incremental updates are benchmarked
    /// against. Results are bit-identical; only the cost differs.
    ///
    /// # Errors
    /// [`SessionError::Delta`] on out-of-range endpoints (nothing changes).
    pub fn recount_anchors(&mut self, edges: &[AnchorEdge]) -> Result<usize, SessionError> {
        let outcome = self.counts.recount_anchors(edges)?;
        self.refresh(&outcome, ProximityRefresh::Full);
        Ok(outcome.applied)
    }

    /// Re-derives proximities and feature values for the changed catalog
    /// entries.
    ///
    /// With [`ProximityRefresh::Delta`] and a known touched region, each
    /// changed proximity is patched in its touched rows/columns
    /// ([`dice_proximity_delta`] over the store's maintained margins) and
    /// only the affected candidates re-gather — a candidate `(l, r)` can
    /// change in column `c` only when `l` is a touched row or `r` a
    /// touched column of `c`'s counts. Columns refreshed without region
    /// info (the full-recount path) re-normalize from scratch and
    /// re-gather wholesale through the same [`gather_features`] kernel
    /// featurization uses. Both paths are bit-identical to a fresh
    /// featurization.
    fn refresh(&mut self, outcome: &DeltaOutcome, mode: ProximityRefresh) {
        if outcome.changed.is_empty() {
            return;
        }
        let mut full_cols: Vec<usize> = Vec::new();
        for chg in &outcome.changed {
            let col = chg.catalog_pos;
            let region = match (mode, &chg.touched) {
                (ProximityRefresh::Delta, Some(region))
                    if !touch_is_dense(
                        self.counts.catalog_count(col),
                        &region.rows,
                        &region.cols,
                    ) =>
                {
                    region
                }
                // No region info (full-recount path, explicit Full policy)
                // or a region dense enough that per-entry patching would
                // cost more than the wholesale refresh.
                _ => {
                    self.stage.proximities[col] = dice_proximity(self.counts.catalog_count(col));
                    full_cols.push(col);
                    continue;
                }
            };
            if region.is_empty() {
                // The update's low-rank product vanished for this chain:
                // counts, sums, proximity and features are all unchanged.
                continue;
            }
            let refreshed = dice_proximity_delta(
                self.counts.catalog_count(col),
                self.counts.catalog_sums(col),
                &region.rows,
                &region.cols,
                &self.stage.proximities[col],
            );
            self.stage.proximities[col] = refreshed;
            let prox = &self.stage.proximities[col];
            for (row, &(l, r)) in self.stage.candidates.iter().enumerate() {
                if region.rows.binary_search(&l.index()).is_ok()
                    || region.cols.binary_search(&r.index()).is_ok()
                {
                    self.stage.features.x[(row, col)] = prox.get(l.index(), r.index());
                }
            }
        }
        if full_cols.is_empty() {
            return;
        }
        let changed_prox: Vec<&CsrMatrix> = full_cols
            .iter()
            .map(|&col| &self.stage.proximities[col])
            .collect();
        let sub = gather_features(
            &changed_prox,
            vec![String::new(); changed_prox.len()],
            &self.stage.candidates,
            self.threading,
        );
        for (k, &col) in full_cols.iter().enumerate() {
            for row in 0..self.stage.candidates.len() {
                self.stage.features.x[(row, col)] = sub.x[(row, k)];
            }
        }
    }

    /// Advances to [`Fitted`] by running the paper's alternating
    /// optimization over a **fixed** feature matrix (the batch semantics of
    /// `eval::run_fold`): converge, query `strategy`, apply the oracle's
    /// answers, repeat until the budget is spent. Confirmed anchors do
    /// *not* flow back into the counts here — use
    /// [`AlignmentSession::run_active`] for the incremental loop.
    pub fn fit(
        self,
        labeled_pos: Vec<usize>,
        oracle: &dyn Oracle,
        config: &ModelConfig,
        strategy: &mut dyn QueryStrategy,
    ) -> AlignmentSession<Fitted> {
        let mut drv = ActiveLoop::new(self.instance(labeled_pos), config.clone());
        loop {
            drv.converge();
            if drv.remaining() == 0 {
                break;
            }
            let selection = drv.select_queries(strategy);
            if selection.is_empty() {
                break;
            }
            for idx in selection {
                drv.apply_answer(idx, oracle.label(idx));
            }
        }
        let report = drv.finish();
        AlignmentSession {
            catalog: self.catalog,
            counts: self.counts,
            threading: self.threading,
            stage: Fitted {
                featurized: self.stage,
                report,
            },
        }
    }
}

impl AlignmentSession<Fitted> {
    /// The fitted model's report.
    pub fn report(&self) -> &activeiter::FitReport {
        &self.stage.report
    }

    /// The candidate links the fit scored (row order).
    pub fn candidates(&self) -> &[(UserId, UserId)] {
        &self.stage.featurized.candidates
    }

    /// The feature matrix the fit was trained on.
    pub fn features(&self) -> &FeatureMatrix {
        &self.stage.featurized.features
    }

    /// Invalidates the fit and steps back to [`Featurized`] — the only way
    /// to apply further anchor updates, which is exactly the point: a
    /// fitted model can never silently coexist with counts it was not
    /// trained on.
    pub fn invalidate_fit(self) -> AlignmentSession<Featurized> {
        AlignmentSession {
            catalog: self.catalog,
            counts: self.counts,
            threading: self.threading,
            stage: self.stage.featurized,
        }
    }

    /// Consumes the session into the fit report alone.
    pub fn into_report(self) -> activeiter::FitReport {
        self.stage.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use activeiter::query::ConflictQuery;
    use activeiter::VecOracle;
    use hetnet::aligned::anchor_matrix;
    use metadiagram::{extract_features_par, CountEngine};

    fn world() -> datagen::GeneratedWorld {
        datagen::generate(&datagen::presets::tiny(23))
    }

    #[test]
    fn featurize_is_bit_equal_to_extract_features_par() {
        let w = world();
        let train = w.truth().links()[..12].to_vec();
        let candidates: Vec<_> = w.truth().iter().map(|l| (l.left, l.right)).collect();
        for threading in [Threading::Serial, Threading::Threads(3)] {
            let session = SessionBuilder::new(w.left(), w.right())
                .anchors(train.clone())
                .threading(threading)
                .count()
                .unwrap()
                .featurize(candidates.clone());
            let a = anchor_matrix(w.left().n_users(), w.right().n_users(), &train).unwrap();
            let engine = CountEngine::new(w.left(), w.right(), a).unwrap();
            let reference =
                extract_features_par(&engine, session.catalog(), &candidates, threading);
            assert_eq!(session.features().names, reference.names);
            assert_eq!(session.features().x.data(), reference.x.data());
        }
    }

    #[test]
    fn featurized_update_matches_fresh_featurization() {
        let w = world();
        let train = w.truth().links()[..10].to_vec();
        let extra = w.truth().links()[10..20].to_vec();
        let candidates: Vec<_> = w.truth().iter().map(|l| (l.left, l.right)).collect();

        let mut incremental = SessionBuilder::new(w.left(), w.right())
            .anchors(train.clone())
            .count()
            .unwrap()
            .featurize(candidates.clone());
        assert_eq!(incremental.update_anchors(&extra).unwrap(), extra.len());

        let merged: Vec<_> = train.iter().chain(extra.iter()).copied().collect();
        let fresh = SessionBuilder::new(w.left(), w.right())
            .anchors(merged)
            .count()
            .unwrap()
            .featurize(candidates);
        assert_eq!(incremental.features().x.data(), fresh.features().x.data());
        for i in 0..incremental.catalog().len() {
            assert_eq!(incremental.proximity_of(i), fresh.proximity_of(i));
            assert_eq!(incremental.count_of(i), fresh.count_of(i));
        }
        // One full count at build; the update went through the delta path.
        assert_eq!(incremental.stats().full_counts, 1);
        assert_eq!(incremental.stats().delta_updates, 1);
        assert_eq!(fresh.stats().full_counts, 1);
    }

    #[test]
    fn delta_and_full_proximity_refresh_are_bit_identical() {
        let w = world();
        let train = w.truth().links()[..8].to_vec();
        let extra = w.truth().links()[8..20].to_vec();
        let candidates: Vec<_> = w.truth().iter().map(|l| (l.left, l.right)).collect();
        let open = || {
            SessionBuilder::new(w.left(), w.right())
                .anchors(train.clone())
                .count()
                .unwrap()
                .featurize(candidates.clone())
        };
        let mut delta = open();
        let mut full = open();
        for batch in extra.chunks(4) {
            assert_eq!(
                delta
                    .update_anchors_with(batch, ProximityRefresh::Delta)
                    .unwrap(),
                full.update_anchors_with(batch, ProximityRefresh::Full)
                    .unwrap()
            );
            assert_eq!(delta.features().x.data(), full.features().x.data());
            for i in 0..delta.catalog().len() {
                assert_eq!(delta.proximity_of(i), full.proximity_of(i), "prox {i}");
            }
        }
        // Both stayed on the incremental counting path.
        assert_eq!(delta.stats().full_counts, 1);
        assert_eq!(full.stats().full_counts, 1);
    }

    #[test]
    fn counted_stage_accepts_updates_before_featurization() {
        let w = world();
        let train = w.truth().links()[..5].to_vec();
        let extra = w.truth().links()[5..15].to_vec();
        let candidates: Vec<_> = w.truth().iter().map(|l| (l.left, l.right)).collect();

        let mut counted = SessionBuilder::new(w.left(), w.right())
            .anchors(train.clone())
            .count()
            .unwrap();
        assert_eq!(counted.update_anchors(&extra).unwrap(), extra.len());
        assert_eq!(counted.n_anchors(), 15);
        let session = counted.featurize(candidates.clone());

        let merged: Vec<_> = train.iter().chain(extra.iter()).copied().collect();
        let fresh = SessionBuilder::new(w.left(), w.right())
            .anchors(merged)
            .count()
            .unwrap()
            .featurize(candidates);
        assert_eq!(session.features().x.data(), fresh.features().x.data());
    }

    #[test]
    fn fit_stage_produces_a_report_and_invalidates_cleanly() {
        let w = world();
        let train = w.truth().links()[..10].to_vec();
        let candidates: Vec<_> = w.truth().iter().map(|l| (l.left, l.right)).collect();
        let truth = vec![true; candidates.len()];
        let session = SessionBuilder::new(w.left(), w.right())
            .anchors(train)
            .count()
            .unwrap()
            .featurize(candidates);
        let labeled: Vec<usize> = (0..10).collect();
        let config = ModelConfig {
            budget: 5,
            ..Default::default()
        };
        let mut strategy = ConflictQuery::new(config.similar_tau, config.margin_delta);
        let fitted = session.fit(labeled, &VecOracle::new(truth), &config, &mut strategy);
        assert!(fitted.report().queried.len() <= 5);
        assert_eq!(fitted.candidates().len(), fitted.features().n_rows());
        // Stepping back re-exposes update_anchors; the fit is gone.
        let mut featurized = fitted.invalidate_fit();
        assert_eq!(featurized.update_anchors(&[]).unwrap(), 0);
    }

    #[test]
    fn builder_surfaces_validation_errors() {
        let w = world();
        let bad = vec![AnchorEdge::new(UserId(u32::MAX), UserId(0))];
        let err = SessionBuilder::new(w.left(), w.right())
            .anchors(bad)
            .count()
            .unwrap_err();
        assert!(matches!(err, SessionError::Anchors(_)));
        assert!(err.to_string().contains("anchor"));
    }
}
