//! The serving-tier worker executable: one `SessionPool` behind the
//! stdio frame protocol. Spawned and supervised by
//! `session::serve::Coordinator`; not meant to be run by hand.

fn main() {
    std::process::exit(session::serve::worker_main());
}
