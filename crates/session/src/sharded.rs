//! Partition-sharded alignment: one [`AlignmentSession`](crate::AlignmentSession) per matched
//! community pair, stitched back into a single result.
//!
//! The global pipeline counts, featurizes and fits over the full
//! `n_left × n_right` anchor space; every stage scales with whole-network
//! size. [`ShardedSession`] splits the problem along community structure
//! instead:
//!
//! 1. both networks are partitioned ([`hetnet::partition`]), partitions
//!    are matched across the networks (anchors as hard constraints,
//!    WL-signature similarity for the rest), and each matched pair gets
//!    its own induced sub-network pair and its own
//!    [`AlignmentSession`](crate::AlignmentSession) — a slot on the existing [`SessionPool`];
//! 2. training anchors, candidates and confirmed-anchor updates are
//!    **routed** to the shard owning their partition pair; anchors whose
//!    endpoints span *unmatched* partitions go to a shared
//!    boundary-anchor ledger instead (they have no shard that could count
//!    them, but they are confirmed knowledge — they re-enter at stitch
//!    time as authoritative links);
//! 3. in-shard updates run through each shard's `C += L·ΔA·R` delta path
//!    ([`SessionPool::update_many`]), so the active loop stays
//!    incremental per shard;
//! 4. fitting fans the per-shard active loops out over the pool's worker
//!    budget and [`ShardedSession::fit`] **stitches** the per-shard
//!    positives into one [`StitchedAlignment`]: boundary-ledger anchors
//!    win outright, then shard predictions enter by descending score
//!    under a global one-to-one constraint (conflicts at partition
//!    boundaries are dropped and counted, not silently kept).
//!
//! Cost intuition: with `k` balanced shards, counting and featurization
//! drop from one `O(n²)`-shaped problem to `k` problems of size
//! `O((n/k)²)` that also run concurrently — the `partition` bench bin
//! measures where the crossover against the global pipeline lands.
//!
//! A sharded session persists like the pool it wraps:
//! [`ShardedSession::save_dir`] writes one snapshot per shard plus a
//! CRC-checked manifest (partition maps, matching, boundary ledger), and
//! [`ShardedSession::open_dir`] restores the whole ensemble without
//! recounting.
//!
//! ## Example
//!
//! ```
//! use session::sharded::{ShardedConfig, ShardedSession};
//! use activeiter::{ModelConfig, VecOracle};
//!
//! let world = datagen::generate(&datagen::presets::tiny(7));
//! let anchors = world.truth().links()[..10].to_vec();
//! let candidates: Vec<_> = world.truth().iter().map(|l| (l.left, l.right)).collect();
//!
//! let mut sharded = ShardedSession::new(
//!     world.left(),
//!     world.right(),
//!     anchors,
//!     &ShardedConfig::default(),
//! )
//! .unwrap();
//! let routing = sharded.featurize(candidates.clone()).unwrap();
//! assert_eq!(routing.routed + routing.pruned, candidates.len());
//!
//! let truth = vec![true; candidates.len()];
//! let config = ModelConfig { budget: 10, ..Default::default() };
//! let stitched = sharded
//!     .fit(&(0..10).collect::<Vec<_>>(), &VecOracle::new(truth), &config)
//!     .unwrap();
//! assert!(!stitched.links.is_empty());
//! ```

use crate::journal::CompactionPolicy;
use crate::pool::{PoolError, SessionId, SessionPool};
use crate::snapshot::{self, SnapshotError};
use crate::stages::SessionBuilder;
use crate::workers::run_ordered;
use crate::{AnchorEdge, SessionError};
use activeiter::driver::ActiveLoop;
use activeiter::query::ConflictQuery;
use activeiter::{FitReport, ModelConfig, Oracle};
use hetnet::partition::{
    induce_subnet, match_partitions, PartitionConfig, PartitionMap, PartitionMatching,
};
use hetnet::{HetNet, HetNetError, UserId};
use metadiagram::{DeltaStats, FeatureSet};
use serde::bin::{crc32, Error as BinError, Reader, Writer};
use sparsela::Threading;
use std::collections::HashMap;
use std::fmt;
use std::path::Path;
use std::sync::Mutex;

/// One shard's candidate batch, claimed exactly once by the worker that
/// featurizes that shard.
type CandidateJob = Mutex<Option<Vec<(UserId, UserId)>>>;

/// Magic prefix of a sharded-session manifest file.
pub const MANIFEST_MAGIC: [u8; 8] = *b"MDASHRD\0";
/// Manifest format version this build writes. Version 2 appends the
/// per-shard base+journal length table; version 1 manifests (no table)
/// still open.
pub const MANIFEST_VERSION: u32 = 2;
/// The oldest manifest version this build still reads.
pub const MANIFEST_MIN_VERSION: u32 = 1;
/// File name of the manifest inside a [`ShardedSession::save_dir`]
/// directory.
pub const MANIFEST_FILE: &str = "manifest.mdashard";

/// Everything a sharded-session operation can fail with.
#[derive(Debug)]
pub enum ShardedError {
    /// Partitioning or partition matching rejected its input
    /// (out-of-range anchor endpoints).
    Partition(HetNetError),
    /// Building a shard's session failed.
    Session(SessionError),
    /// A pooled shard operation failed.
    Pool(PoolError),
    /// Reading or writing the manifest (or a shard snapshot) failed.
    Manifest(SnapshotError),
    /// The operation needs the other stage (e.g. fitting before
    /// featurizing).
    WrongStage {
        /// The stage the operation required.
        expected: &'static str,
    },
    /// Two structures that must agree have drifted apart — a user the
    /// partition map routes to a shard is missing from that shard's id
    /// tables, or a shard vanished mid-operation. These invariants used
    /// to be `expect`s; as typed errors a damaged ensemble (e.g. a
    /// hand-edited manifest whose maps disagree with the shard
    /// snapshots) reports instead of aborting the process.
    Inconsistent {
        /// Which invariant broke.
        what: &'static str,
    },
}

impl fmt::Display for ShardedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardedError::Partition(e) => write!(f, "sharded partitioning: {e}"),
            ShardedError::Session(e) => write!(f, "sharded session: {e}"),
            ShardedError::Pool(e) => write!(f, "sharded pool: {e}"),
            ShardedError::Manifest(e) => write!(f, "sharded manifest: {e}"),
            ShardedError::WrongStage { expected } => {
                write!(f, "sharded session is not in the {expected} stage")
            }
            ShardedError::Inconsistent { what } => {
                write!(f, "sharded session structures disagree: {what}")
            }
        }
    }
}

impl std::error::Error for ShardedError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ShardedError::Partition(e) => Some(e),
            ShardedError::Session(e) => Some(e),
            ShardedError::Pool(e) => Some(e),
            ShardedError::Manifest(e) => Some(e),
            ShardedError::WrongStage { .. } | ShardedError::Inconsistent { .. } => None,
        }
    }
}

impl From<HetNetError> for ShardedError {
    fn from(e: HetNetError) -> Self {
        ShardedError::Partition(e)
    }
}

impl From<SessionError> for ShardedError {
    fn from(e: SessionError) -> Self {
        ShardedError::Session(e)
    }
}

impl From<PoolError> for ShardedError {
    fn from(e: PoolError) -> Self {
        ShardedError::Pool(e)
    }
}

impl From<SnapshotError> for ShardedError {
    fn from(e: SnapshotError) -> Self {
        ShardedError::Manifest(e)
    }
}

/// Knobs of a [`ShardedSession`].
#[derive(Debug, Clone)]
pub struct ShardedConfig {
    /// Community-detection knobs ([`PartitionMap::detect`]).
    pub partition: PartitionConfig,
    /// WL refinement rounds for partition matching
    /// ([`hetnet::partition::wl_signatures`]).
    pub wl_rounds: usize,
    /// Feature-catalog slice each shard counts.
    pub feature_set: FeatureSet,
    /// Worker threading *inside* one shard's count/gather. Shards already
    /// run concurrently, so the default keeps each shard serial; raise it
    /// only when shards outnumber cores badly the other way.
    pub threading: Threading,
    /// Worker budget for the shard fan-out itself (`0` = one per
    /// available hardware thread). Results are bit-identical at any
    /// setting.
    pub workers: usize,
    /// When [`ShardedSession::save_dir`] folds a shard's ΔA journal back
    /// into its base snapshot (see [`crate::journal`]). The default
    /// bounds each shard's journal at 1 MiB, so replay-on-open stays
    /// cheap while a typical round still persists at k·O(|ΔA_k|).
    pub compaction: CompactionPolicy,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        ShardedConfig {
            partition: PartitionConfig::default(),
            wl_rounds: 2,
            feature_set: FeatureSet::Full,
            threading: Threading::Serial,
            workers: 0,
            compaction: CompactionPolicy::Bytes(1 << 20),
        }
    }
}

/// One shard: a pooled session over one matched partition pair, plus the
/// local↔global id translation tables.
#[derive(Debug)]
struct Shard {
    session: SessionId,
    /// Indices into `matching.pairs` — shard `i` serves pair `i`.
    left_ids: Vec<UserId>,
    right_ids: Vec<UserId>,
    /// Global candidate index per local feature row (set by `featurize`).
    rows: Vec<usize>,
}

impl Shard {
    fn local_left(&self, u: UserId) -> Option<u32> {
        self.left_ids.binary_search(&u).ok().map(|i| i as u32)
    }

    fn local_right(&self, u: UserId) -> Option<u32> {
        self.right_ids.binary_search(&u).ok().map(|i| i as u32)
    }
}

/// Where a global candidate went during routing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Route {
    /// `(shard index, local row)`.
    Shard(usize, usize),
    /// No matched partition pair covers the candidate; it is predicted
    /// negative by construction.
    Pruned,
}

/// What [`ShardedSession::featurize`] did with the candidate list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoutingSummary {
    /// Candidates routed into some shard.
    pub routed: usize,
    /// Candidates spanning unmatched partition pairs — excluded from
    /// every shard and predicted negative in the stitched result.
    pub pruned: usize,
}

/// What [`ShardedSession::update_anchors`] did with an edge batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardedUpdate {
    /// Genuinely new anchors merged into shard sessions (through the
    /// delta recount path).
    pub applied: usize,
    /// Edges spanning unmatched partition pairs, appended to the shared
    /// boundary-anchor ledger (duplicates skipped).
    pub boundary: usize,
}

/// One stitched alignment link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StitchedLink {
    /// User in the left network (global id).
    pub left: UserId,
    /// User in the right network (global id).
    pub right: UserId,
    /// Model score ŷ; `f64::INFINITY` for confirmed boundary anchors.
    pub score: f64,
    /// The shard that predicted the link; `None` for boundary-ledger
    /// anchors.
    pub shard: Option<usize>,
    /// True when the link is a confirmed anchor from the boundary ledger
    /// rather than a model prediction.
    pub confirmed: bool,
}

/// One shard's fit, with the row translation back to global candidates.
#[derive(Debug, Clone)]
pub struct ShardFitReport {
    /// The matched partition pair `(left partition, right partition)`.
    pub pair: (usize, usize),
    /// Global candidate index per local report row.
    pub rows: Vec<usize>,
    /// The shard's [`FitReport`].
    pub report: FitReport,
}

/// The stitched result of [`ShardedSession::fit`]: per-shard positives
/// merged under a global one-to-one constraint, boundary-ledger anchors
/// included and authoritative. Convertible to `eval`'s `MultiAlignment`
/// (see `eval::multi::stitched_to_alignment`).
#[derive(Debug, Clone)]
pub struct StitchedAlignment {
    /// Accepted links, sorted by `(left, right)`.
    pub links: Vec<StitchedLink>,
    /// Predicted-positive links rejected by boundary conflict resolution
    /// (a higher-scoring link or a confirmed anchor already claimed an
    /// endpoint).
    pub dropped_conflicts: usize,
    /// Candidates that never reached a shard ([`RoutingSummary::pruned`]).
    pub pruned_candidates: usize,
    /// Per-shard fit reports, in shard order.
    pub shard_reports: Vec<ShardFitReport>,
}

/// The partition-sharded alignment pipeline; see the [module docs](self).
pub struct ShardedSession {
    pool: SessionPool,
    shards: Vec<Shard>,
    left_map: PartitionMap,
    right_map: PartitionMap,
    matching: PartitionMatching,
    shard_of_pair: HashMap<(usize, usize), usize>,
    boundary_anchors: Vec<AnchorEdge>,
    config: ShardedConfig,
    /// Global candidate routes; non-empty exactly when featurized.
    routes: Vec<Route>,
    featurized: bool,
}

impl fmt::Debug for ShardedSession {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedSession")
            .field("shards", &self.shards.len())
            .field("boundary_anchors", &self.boundary_anchors.len())
            .field("featurized", &self.featurized)
            .finish()
    }
}

impl ShardedSession {
    /// Detects communities on both networks, matches them, and spins one
    /// counted [`AlignmentSession`](crate::AlignmentSession) per matched pair.
    ///
    /// # Errors
    /// [`ShardedError::Partition`] on out-of-range anchor endpoints;
    /// [`ShardedError::Session`] when a shard's count fails.
    pub fn new(
        left: &HetNet,
        right: &HetNet,
        anchors: Vec<AnchorEdge>,
        config: &ShardedConfig,
    ) -> Result<Self, ShardedError> {
        let left_map = PartitionMap::detect(left, &config.partition);
        let right_map = PartitionMap::detect(right, &config.partition);
        Self::with_partitions(left, right, left_map, right_map, anchors, config)
    }

    /// Like [`ShardedSession::new`] with explicit partition maps — custom
    /// partitioners, restored maps, or [`PartitionMap::trivial`] for the
    /// degenerate single-shard session (bit-identical to a plain
    /// [`AlignmentSession`](crate::AlignmentSession); the property tests pin this).
    ///
    /// # Errors
    /// As [`ShardedSession::new`].
    pub fn with_partitions(
        left: &HetNet,
        right: &HetNet,
        left_map: PartitionMap,
        right_map: PartitionMap,
        anchors: Vec<AnchorEdge>,
        config: &ShardedConfig,
    ) -> Result<Self, ShardedError> {
        let matching = match_partitions(
            left,
            right,
            &left_map,
            &right_map,
            &anchors,
            config.wl_rounds,
        )?;
        let shard_of_pair: HashMap<(usize, usize), usize> = matching
            .pairs
            .iter()
            .enumerate()
            .map(|(i, m)| ((m.left, m.right), i))
            .collect();

        // Route the training anchors: in-shard ones seed their shard's
        // count; pair-spanning ones go to the boundary ledger.
        let mut shard_anchors: Vec<Vec<AnchorEdge>> = vec![Vec::new(); matching.pairs.len()];
        let mut boundary_anchors: Vec<AnchorEdge> = Vec::new();
        for a in &anchors {
            let pair = (left_map.part_of(a.left), right_map.part_of(a.right));
            match shard_of_pair.get(&pair) {
                Some(&si) => shard_anchors[si].push(*a),
                None => boundary_anchors.push(*a),
            }
        }

        // Build the per-shard counted sessions concurrently — each shard
        // pays a catalog count over its own sub-networks only.
        let mut pool = SessionPool::new(config.workers);
        pool.set_compaction(config.compaction);
        let workers = pool.workers();
        let mut built: Vec<
            Result<crate::stages::AlignmentSession<crate::stages::Counted>, ShardedError>,
        > = Vec::with_capacity(matching.pairs.len());
        let mut id_tables: Vec<(Vec<UserId>, Vec<UserId>)> = Vec::new();
        for m in &matching.pairs {
            id_tables.push((
                left_map.members(m.left).to_vec(),
                right_map.members(m.right).to_vec(),
            ));
        }
        run_ordered(
            matching.pairs.len(),
            workers,
            |i| {
                let (left_ids, right_ids) = &id_tables[i];
                let sub_left = induce_subnet(left, left_ids);
                let sub_right = induce_subnet(right, right_ids);
                let mut local: Vec<AnchorEdge> = Vec::with_capacity(shard_anchors[i].len());
                for a in &shard_anchors[i] {
                    // Routed here by the partition map, so both endpoints
                    // must be members of the induced sub-networks; a map
                    // that disagrees with its own member lists reports
                    // instead of aborting.
                    let (Some(l), Some(r)) =
                        (sub_left.local_of(a.left), sub_right.local_of(a.right))
                    else {
                        return Err(ShardedError::Inconsistent {
                            what: "anchor routed to a shard its partition does not contain",
                        });
                    };
                    local.push(AnchorEdge::new(UserId(l as u32), UserId(r as u32)));
                }
                SessionBuilder::new(&sub_left.net, &sub_right.net)
                    .anchors(local)
                    .feature_set(config.feature_set)
                    .threading(config.threading)
                    .count()
                    .map_err(ShardedError::from)
            },
            |r| built.push(r),
        );
        let mut shards = Vec::with_capacity(built.len());
        for (session, (left_ids, right_ids)) in built.into_iter().zip(id_tables) {
            let id = pool.insert(session?);
            shards.push(Shard {
                session: id,
                left_ids,
                right_ids,
                rows: Vec::new(),
            });
        }
        Ok(ShardedSession {
            pool,
            shards,
            left_map,
            right_map,
            matching,
            shard_of_pair,
            boundary_anchors,
            config: config.clone(),
            routes: Vec::new(),
            featurized: false,
        })
    }

    /// Number of shards (matched partition pairs).
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The configuration this session was built (or reopened) with.
    pub fn config(&self) -> &ShardedConfig {
        &self.config
    }

    /// The left network's partition map.
    pub fn left_partitions(&self) -> &PartitionMap {
        &self.left_map
    }

    /// The right network's partition map.
    pub fn right_partitions(&self) -> &PartitionMap {
        &self.right_map
    }

    /// The cross-network partition matching the shards were built from.
    pub fn matching(&self) -> &PartitionMatching {
        &self.matching
    }

    /// The shared boundary-anchor ledger: confirmed anchors spanning
    /// unmatched partition pairs. They seed no shard but are
    /// authoritative in every [`StitchedAlignment`].
    pub fn boundary_anchors(&self) -> &[AnchorEdge] {
        &self.boundary_anchors
    }

    /// Aggregated work counters over all shards (sums of each shard's
    /// [`DeltaStats`]).
    ///
    /// # Errors
    /// [`ShardedError::Pool`] when a shard slot is gone.
    pub fn stats(&self) -> Result<DeltaStats, ShardedError> {
        let mut total = DeltaStats::default();
        for s in &self.shards {
            let st = self.pool.stats(s.session)?;
            total.full_counts += st.full_counts;
            total.delta_updates += st.delta_updates;
            total.anchors_applied += st.anchors_applied;
        }
        Ok(total)
    }

    /// Routes `candidates` to their shards and featurizes every shard
    /// (concurrently). Candidates spanning unmatched partition pairs are
    /// pruned — no shard could score them — and reported.
    ///
    /// # Errors
    /// [`ShardedError::WrongStage`] when already featurized;
    /// [`ShardedError::Partition`] on out-of-range candidate endpoints.
    pub fn featurize(
        &mut self,
        candidates: Vec<(UserId, UserId)>,
    ) -> Result<RoutingSummary, ShardedError> {
        if self.featurized {
            return Err(ShardedError::WrongStage {
                expected: "Counted",
            });
        }
        for &(l, r) in &candidates {
            self.check_endpoints(l, r)?;
        }
        let mut shard_cands: Vec<Vec<(UserId, UserId)>> = vec![Vec::new(); self.shards.len()];
        // Row tables are staged locally and committed only after every
        // shard featurizes, so an error mid-routing (or a failed shard)
        // leaves the session in its pre-call state.
        let mut shard_rows: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        let mut routes = Vec::with_capacity(candidates.len());
        let mut pruned = 0usize;
        for (gi, &(l, r)) in candidates.iter().enumerate() {
            let pair = (self.left_map.part_of(l), self.right_map.part_of(r));
            match self.shard_of_pair.get(&pair) {
                Some(&si) => {
                    let shard = &self.shards[si];
                    let (Some(ll), Some(rr)) = (shard.local_left(l), shard.local_right(r)) else {
                        return Err(ShardedError::Inconsistent {
                            what: "candidate routed to a shard its partition does not contain",
                        });
                    };
                    routes.push(Route::Shard(si, shard_cands[si].len()));
                    shard_cands[si].push((UserId(ll), UserId(rr)));
                    shard_rows[si].push(gi);
                }
                None => {
                    routes.push(Route::Pruned);
                    pruned += 1;
                }
            }
        }
        let routed = candidates.len() - pruned;
        // Fan the featurizations out; each shard's slot lock serializes
        // against nothing (one job per shard).
        let jobs: Vec<CandidateJob> = shard_cands
            .into_iter()
            .map(|c| Mutex::new(Some(c)))
            .collect();
        let mut results: Vec<Result<(), ShardedError>> = Vec::with_capacity(self.shards.len());
        run_ordered(
            self.shards.len(),
            self.pool.workers(),
            |i| {
                let cands = jobs[i]
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .take()
                    .ok_or(ShardedError::Inconsistent {
                        what: "a shard's candidate batch was claimed twice",
                    })?;
                Ok(self.pool.featurize(self.shards[i].session, cands)?)
            },
            |r| results.push(r),
        );
        for r in results {
            r?;
        }
        for (shard, rows) in self.shards.iter_mut().zip(shard_rows) {
            shard.rows = rows;
        }
        self.routes = routes;
        self.featurized = true;
        Ok(RoutingSummary { routed, pruned })
    }

    fn check_endpoints(&self, l: UserId, r: UserId) -> Result<(), ShardedError> {
        if l.index() >= self.left_map.n_users() {
            return Err(HetNetError::NodeOutOfRange {
                kind: hetnet::NodeKind::User,
                index: l.index(),
                count: self.left_map.n_users(),
            }
            .into());
        }
        if r.index() >= self.right_map.n_users() {
            return Err(HetNetError::NodeOutOfRange {
                kind: hetnet::NodeKind::User,
                index: r.index(),
                count: self.right_map.n_users(),
            }
            .into());
        }
        Ok(())
    }

    /// Applies newly confirmed anchors: in-shard edges go to their shard's
    /// `C += L·ΔA·R` delta path (fanned out as one
    /// [`SessionPool::update_many`] batch, refreshing featurized shards'
    /// downstream artifacts), pair-spanning edges join the boundary
    /// ledger. Nothing changes on error.
    ///
    /// # Errors
    /// [`ShardedError::Partition`] on out-of-range endpoints;
    /// [`ShardedError::Pool`] when a shard update fails.
    pub fn update_anchors(&mut self, edges: &[AnchorEdge]) -> Result<ShardedUpdate, ShardedError> {
        for e in edges {
            self.check_endpoints(e.left, e.right)?;
        }
        let mut per_shard: Vec<Vec<AnchorEdge>> = vec![Vec::new(); self.shards.len()];
        let mut boundary_new: Vec<AnchorEdge> = Vec::new();
        for e in edges {
            let pair = (
                self.left_map.part_of(e.left),
                self.right_map.part_of(e.right),
            );
            match self.shard_of_pair.get(&pair) {
                Some(&si) => {
                    let shard = &self.shards[si];
                    let (Some(l), Some(r)) = (shard.local_left(e.left), shard.local_right(e.right))
                    else {
                        return Err(ShardedError::Inconsistent {
                            what: "anchor routed to a shard its partition does not contain",
                        });
                    };
                    per_shard[si].push(AnchorEdge::new(UserId(l), UserId(r)));
                }
                None => {
                    if !self.boundary_anchors.contains(e) && !boundary_new.contains(e) {
                        boundary_new.push(*e);
                    }
                }
            }
        }
        let jobs: Vec<(SessionId, Vec<AnchorEdge>)> = per_shard
            .into_iter()
            .enumerate()
            .filter(|(_, edges)| !edges.is_empty())
            .map(|(si, edges)| (self.shards[si].session, edges))
            .collect();
        let mut applied = 0usize;
        for r in self.pool.update_many(&jobs) {
            applied += r?;
        }
        let boundary = boundary_new.len();
        self.boundary_anchors.extend(boundary_new);
        Ok(ShardedUpdate { applied, boundary })
    }

    /// Fits every shard's active loop concurrently and stitches the
    /// results; see the [module docs](self) for the protocol.
    ///
    /// `labeled_pos` indexes the **global** candidate list passed to
    /// [`ShardedSession::featurize`]; so does every row the `oracle` is
    /// asked about. The query budget is split across shards proportionally
    /// to their candidate counts (largest-remainder, so a single shard
    /// receives the full budget — the degenerate case is exactly the
    /// global fit). Each shard queries through the paper's conflict
    /// strategy built from `config`.
    ///
    /// # Errors
    /// [`ShardedError::WrongStage`] before featurization;
    /// [`ShardedError::Pool`] when a shard slot is gone.
    pub fn fit(
        &self,
        labeled_pos: &[usize],
        oracle: &(dyn Oracle + Sync),
        config: &ModelConfig,
    ) -> Result<StitchedAlignment, ShardedError> {
        if !self.featurized {
            return Err(ShardedError::WrongStage {
                expected: "Featurized",
            });
        }
        // Translate the global labeled set to per-shard local rows.
        let mut labeled_local: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for &gi in labeled_pos {
            if let Some(Route::Shard(si, row)) = self.routes.get(gi) {
                labeled_local[*si].push(*row);
            }
        }
        let weights: Vec<usize> = self.shards.iter().map(|s| s.rows.len()).collect();
        let budgets = split_budget(config.budget, &weights);

        let mut fits: Vec<Result<FitReport, PoolError>> = Vec::with_capacity(self.shards.len());
        run_ordered(
            self.shards.len(),
            self.pool.workers(),
            |i| {
                let shard = &self.shards[i];
                if shard.rows.is_empty() {
                    return Ok(empty_report());
                }
                let shard_config = ModelConfig {
                    budget: budgets[i],
                    ..config.clone()
                };
                let shard_oracle = RowOracle {
                    inner: oracle,
                    rows: &shard.rows,
                };
                self.pool.with_featurized(shard.session, |s| {
                    let mut strategy =
                        ConflictQuery::new(shard_config.similar_tau, shard_config.margin_delta);
                    let mut drv =
                        ActiveLoop::new(s.instance(labeled_local[i].clone()), shard_config.clone());
                    loop {
                        drv.converge();
                        if drv.remaining() == 0 {
                            break;
                        }
                        let selection = drv.select_queries(&mut strategy);
                        if selection.is_empty() {
                            break;
                        }
                        for idx in selection {
                            drv.apply_answer(idx, shard_oracle.label(idx));
                        }
                    }
                    drv.finish()
                })
            },
            |r| fits.push(r),
        );

        let mut shard_reports = Vec::with_capacity(self.shards.len());
        for (i, fit) in fits.into_iter().enumerate() {
            shard_reports.push(ShardFitReport {
                pair: (self.matching.pairs[i].left, self.matching.pairs[i].right),
                rows: self.shards[i].rows.clone(),
                report: fit?,
            });
        }
        self.stitch(shard_reports)
    }

    /// Boundary-anchors-win, score-greedy, globally one-to-one stitching.
    fn stitch(
        &self,
        shard_reports: Vec<ShardFitReport>,
    ) -> Result<StitchedAlignment, ShardedError> {
        let mut proposed: Vec<StitchedLink> = Vec::new();
        for a in &self.boundary_anchors {
            proposed.push(StitchedLink {
                left: a.left,
                right: a.right,
                score: f64::INFINITY,
                shard: None,
                confirmed: true,
            });
        }
        for (si, sr) in shard_reports.iter().enumerate() {
            let shard = &self.shards[si];
            let local_cands = sr.report.labels.len();
            debug_assert_eq!(local_cands, shard.rows.len());
            for row in 0..local_cands {
                // srclint: allow(float_eq, reason = "labels are exact 0.0/1.0 sentinels assigned by the driver, never computed")
                if sr.report.labels[row] == 1.0 {
                    // Translate back through this shard's candidate list:
                    // proximate global ids live in the pool's featurized
                    // candidates (local ids), so recover them from the id
                    // tables.
                    let (l, r) = self
                        .pool
                        .with_featurized(shard.session, |s| s.candidates()[row])?;
                    proposed.push(StitchedLink {
                        left: shard.left_ids[l.index()],
                        right: shard.right_ids[r.index()],
                        score: sr.report.scores[row],
                        shard: Some(si),
                        confirmed: false,
                    });
                }
            }
        }
        // Confirmed anchors first, then descending score (NaN last), then
        // ids — a total, deterministic order.
        proposed.sort_by(|a, b| {
            b.confirmed
                .cmp(&a.confirmed)
                .then(cmp_scores_desc(a.score, b.score))
                .then(a.left.cmp(&b.left))
                .then(a.right.cmp(&b.right))
        });
        let mut used_left = vec![false; self.left_map.n_users()];
        let mut used_right = vec![false; self.right_map.n_users()];
        let mut links = Vec::new();
        let mut dropped = 0usize;
        for link in proposed {
            if used_left[link.left.index()] || used_right[link.right.index()] {
                dropped += 1;
                continue;
            }
            used_left[link.left.index()] = true;
            used_right[link.right.index()] = true;
            links.push(link);
        }
        links.sort_by(|a, b| a.left.cmp(&b.left).then(a.right.cmp(&b.right)));
        Ok(StitchedAlignment {
            links,
            dropped_conflicts: dropped,
            pruned_candidates: self.routes.iter().filter(|r| **r == Route::Pruned).count(),
            shard_reports,
        })
    }

    /// Persists the ensemble to `dir`: one base snapshot + ΔA journal
    /// per shard (`shard_NNNN.snap` / `.snap.jrnl`) plus the CRC-checked
    /// [`MANIFEST_FILE`] (v2) holding the partition maps, the matching,
    /// the boundary-anchor ledger, and the per-shard base+journal length
    /// table. Routing and features are derived state and are not
    /// persisted — reopen and re-featurize.
    ///
    /// The **first** save of a shard into `dir` writes its full base and
    /// attaches a journal; from then on anchor updates are write-ahead
    /// appended per shard, so a later `save_dir` costs k·O(|ΔA_k|) — an
    /// fsynced checkpoint record per shard plus the manifest — with each
    /// journal folded back into its base per
    /// [`ShardedConfig::compaction`].
    ///
    /// Every shard is attempted even when one fails (a full-disk or
    /// vacated slot does not abort the batch); the manifest is written
    /// only when all shards persisted, and the **first** shard error is
    /// returned otherwise.
    ///
    /// # Errors
    /// [`ShardedError::Pool`] / [`ShardedError::Manifest`] on write
    /// failures.
    pub fn save_dir(&self, dir: impl AsRef<Path>) -> Result<(), ShardedError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir).map_err(SnapshotError::Io)?;
        let mut first_err: Option<ShardedError> = None;
        for (i, shard) in self.shards.iter().enumerate() {
            let path = dir.join(shard_file(i));
            let result = match self.pool.journal_base(shard.session) {
                Ok(Some(base)) if base == path => self.pool.save(shard.session, &path),
                // Unjournaled (live-built) or journaled elsewhere: write
                // the full base here and journal from now on.
                Ok(_) => self.pool.attach_journal(shard.session, &path),
                Err(e) => Err(e),
            };
            if let Err(e) = result {
                first_err.get_or_insert(ShardedError::Pool(e));
            }
        }
        // Per-shard saves may have enqueued background folds; the
        // manifest's byte table must describe the files as they are
        // after those folds land, so drain them first. A failed fold
        // leaves its shard durable as-is, but the save still reports it.
        for (_id, e) in self.pool.flush_compactions() {
            first_err.get_or_insert(ShardedError::Pool(crate::pool::PoolError::Journal(e)));
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        let manifest = self.manifest_bytes()?;
        snapshot::write_atomic(&dir.join(MANIFEST_FILE), &manifest)?;
        Ok(())
    }

    fn manifest_bytes(&self) -> Result<Vec<u8>, ShardedError> {
        let mut payload = Writer::new();
        encode_map(&mut payload, &self.left_map);
        encode_map(&mut payload, &self.right_map);
        payload.usize(self.matching.pairs.len());
        for m in &self.matching.pairs {
            payload.usize(m.left);
            payload.usize(m.right);
            payload.f64(m.similarity);
            payload.usize(m.anchor_votes);
        }
        payload.usize_slice(&self.matching.unmatched_left);
        payload.usize_slice(&self.matching.unmatched_right);
        payload.usize(self.boundary_anchors.len());
        for a in &self.boundary_anchors {
            payload.u32(a.left.0);
            payload.u32(a.right.0);
        }
        // v2: the per-shard base+journal length table, as of this save.
        // Informational — integrity comes from each journal's CRC pairing
        // with its base — but it lets ops tooling spot a shard whose
        // files were swapped or truncated without decoding them.
        payload.usize(self.shards.len());
        for shard in &self.shards {
            let (base_len, journal_len) = match self.pool.journal_stats(shard.session)? {
                Some((b, j, _)) => (b, j),
                None => (0, 0),
            };
            payload.u64(base_len);
            payload.u64(journal_len);
        }
        let payload = payload.into_bytes();
        let mut out = Writer::with_capacity(MANIFEST_MAGIC.len() + 4 + payload.len() + 4);
        out.bytes(&MANIFEST_MAGIC);
        out.u32(MANIFEST_VERSION);
        out.bytes(&payload);
        out.u32(crc32(&payload));
        Ok(out.into_bytes())
    }

    /// Restores a [`ShardedSession::save_dir`] directory: decodes the
    /// manifest, opens every shard snapshot across the worker budget, and
    /// rebuilds the routing tables. The session comes back in the counted
    /// stage (call [`ShardedSession::featurize`] next); `config` supplies
    /// the runtime knobs (worker budget, threading) — the partition
    /// structure itself comes from the manifest.
    ///
    /// # Errors
    /// [`ShardedError::Manifest`] on a missing/corrupt manifest;
    /// [`ShardedError::Pool`] when a shard snapshot refuses to open (the
    /// error names the file).
    pub fn open_dir(dir: impl AsRef<Path>, config: &ShardedConfig) -> Result<Self, ShardedError> {
        let dir = dir.as_ref();
        let bytes = std::fs::read(dir.join(MANIFEST_FILE)).map_err(SnapshotError::Io)?;
        let decoded = decode_manifest(&bytes)?;
        let (left_map, right_map, matching, boundary_anchors) = decoded.parts;

        let mut pool = SessionPool::new(config.workers);
        pool.set_compaction(config.compaction);
        let paths: Vec<std::path::PathBuf> = (0..matching.pairs.len())
            .map(|i| dir.join(shard_file(i)))
            .collect();
        let mut shards = Vec::with_capacity(paths.len());
        for (i, opened) in pool.open_many(&paths).into_iter().enumerate() {
            let id = opened?;
            let m = &matching.pairs[i];
            shards.push(Shard {
                session: id,
                left_ids: left_map.members(m.left).to_vec(),
                right_ids: right_map.members(m.right).to_vec(),
                rows: Vec::new(),
            });
        }
        let shard_of_pair = matching
            .pairs
            .iter()
            .enumerate()
            .map(|(i, m)| ((m.left, m.right), i))
            .collect();
        Ok(ShardedSession {
            pool,
            shards,
            left_map,
            right_map,
            matching,
            shard_of_pair,
            boundary_anchors,
            config: config.clone(),
            routes: Vec::new(),
            featurized: false,
        })
    }
}

/// Snapshot file name of shard `i`.
fn shard_file(i: usize) -> String {
    format!("shard_{i:04}.snap")
}

fn encode_map(w: &mut Writer, map: &PartitionMap) {
    let (part_of, boundary) = map.raw_parts();
    w.usize(part_of.len());
    w.reserve(part_of.len() * 4 + boundary.len());
    for &p in part_of {
        w.u32(p);
    }
    for &b in boundary {
        w.u8(b as u8);
    }
}

fn decode_map(r: &mut Reader<'_>) -> Result<PartitionMap, SnapshotError> {
    // Each user costs 4 bytes of partition id + 1 boundary byte, so the
    // length prefix is bounded by the remaining input before it sizes
    // any allocation (the PR 5 `seq_len` guard; `unguarded_prealloc`
    // enforces the pattern).
    let n = r.seq_len(5)?;
    let mut part_of = Vec::with_capacity(n);
    let mut next_dense = 0u32;
    for _ in 0..n {
        let p = r.u32()?;
        if p > next_dense {
            return Err(BinError::Malformed(format!(
                "partition ids must be dense; found {p} before {next_dense}"
            ))
            .into());
        }
        if p == next_dense {
            next_dense += 1;
        }
        part_of.push(p);
    }
    let mut boundary = Vec::with_capacity(n);
    for _ in 0..n {
        boundary.push(r.u8()? != 0);
    }
    Ok(PartitionMap::from_raw_parts(part_of, boundary))
}

type ManifestParts = (
    PartitionMap,
    PartitionMap,
    PartitionMatching,
    Vec<AnchorEdge>,
);

/// Everything a manifest decodes to, version differences normalized.
struct DecodedManifest {
    version: u32,
    parts: ManifestParts,
    /// Per-shard `(base_len, journal_len)` as of the last save — present
    /// from manifest v2 on, empty for v1.
    shard_lens: Vec<(u64, u64)>,
}

/// What [`manifest_info`] reports about a saved sharded-session
/// directory without opening any shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestInfo {
    /// The manifest's format version (1 or 2).
    pub version: u32,
    /// Number of shards (matched partition pairs) in the ensemble.
    pub n_shards: usize,
    /// Boundary-ledger anchors recorded in the manifest.
    pub boundary_anchors: usize,
    /// Per-shard `(base_len, journal_len)` in bytes as of the last save
    /// — empty for a v1 manifest, which predates the table.
    pub shard_lens: Vec<(u64, u64)>,
}

/// Decodes the manifest in `dir` and reports its version and per-shard
/// base+journal lengths — the ops-facing view of a saved ensemble, no
/// shard snapshot is touched.
///
/// # Errors
/// [`ShardedError::Manifest`] on a missing/corrupt manifest.
pub fn manifest_info(dir: impl AsRef<Path>) -> Result<ManifestInfo, ShardedError> {
    let bytes = std::fs::read(dir.as_ref().join(MANIFEST_FILE)).map_err(SnapshotError::Io)?;
    let decoded = decode_manifest(&bytes)?;
    Ok(ManifestInfo {
        version: decoded.version,
        n_shards: decoded.parts.2.pairs.len(),
        boundary_anchors: decoded.parts.3.len(),
        shard_lens: decoded.shard_lens,
    })
}

fn decode_manifest(bytes: &[u8]) -> Result<DecodedManifest, SnapshotError> {
    let mut r = Reader::new(bytes);
    let magic = r
        .bytes(MANIFEST_MAGIC.len())
        .map_err(|_| SnapshotError::BadMagic)?;
    if magic != MANIFEST_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = r.u32()?;
    if !(MANIFEST_MIN_VERSION..=MANIFEST_VERSION).contains(&version) {
        return Err(SnapshotError::UnsupportedVersion {
            found: version,
            supported: MANIFEST_VERSION,
        });
    }
    if r.remaining() < 4 {
        return Err(BinError::UnexpectedEof {
            needed: 4,
            remaining: r.remaining(),
        }
        .into());
    }
    let payload = r.bytes(r.remaining() - 4)?;
    let mut tail = Reader::new(bytes);
    let _ = tail.bytes(bytes.len() - 4)?;
    let recorded = tail.u32()?;
    if crc32(payload) != recorded {
        return Err(SnapshotError::Checksum {
            section: "MANI".to_string(),
        });
    }
    let mut p = Reader::new(payload);
    let left_map = decode_map(&mut p)?;
    let right_map = decode_map(&mut p)?;
    let n_pairs = p.seq_len(8 * 4)?;
    let mut pairs = Vec::with_capacity(n_pairs);
    for _ in 0..n_pairs {
        let left = p.usize()?;
        let right = p.usize()?;
        let similarity = p.f64()?;
        let anchor_votes = p.usize()?;
        if left >= left_map.n_partitions() || right >= right_map.n_partitions() {
            return Err(BinError::Malformed(format!(
                "matched pair ({left}, {right}) outside the partition maps"
            ))
            .into());
        }
        pairs.push(hetnet::partition::MatchedPair {
            left,
            right,
            similarity,
            anchor_votes,
        });
    }
    let unmatched_left = p.usize_slice()?;
    let unmatched_right = p.usize_slice()?;
    let n_anchors = p.seq_len(8)?;
    let mut boundary_anchors = Vec::with_capacity(n_anchors);
    for _ in 0..n_anchors {
        let l = p.u32()?;
        let rr = p.u32()?;
        if l as usize >= left_map.n_users() || rr as usize >= right_map.n_users() {
            return Err(BinError::Malformed(format!(
                "boundary anchor ({l}, {rr}) outside the networks"
            ))
            .into());
        }
        boundary_anchors.push(AnchorEdge::new(UserId(l), UserId(rr)));
    }
    // v2 appends the per-shard (base_len, journal_len) table; v1 ends here.
    let mut shard_lens = Vec::new();
    if version >= 2 {
        let n_shards = p.seq_len(16)?;
        if n_shards != pairs.len() {
            return Err(BinError::Malformed(format!(
                "shard-length table has {n_shards} rows for {} matched pairs",
                pairs.len()
            ))
            .into());
        }
        shard_lens.reserve(n_shards);
        for _ in 0..n_shards {
            let base_len = p.u64()?;
            let journal_len = p.u64()?;
            shard_lens.push((base_len, journal_len));
        }
    }
    if !p.is_exhausted() {
        return Err(
            BinError::Malformed(format!("{} trailing manifest bytes", p.remaining())).into(),
        );
    }
    Ok(DecodedManifest {
        version,
        parts: (
            left_map,
            right_map,
            PartitionMatching {
                pairs,
                unmatched_left,
                unmatched_right,
            },
            boundary_anchors,
        ),
        shard_lens,
    })
}

/// Splits `total` across `weights` proportionally (largest remainder;
/// ties to the smaller index). A single non-zero weight gets everything.
fn split_budget(total: usize, weights: &[usize]) -> Vec<usize> {
    let sum: usize = weights.iter().sum();
    if sum == 0 || total == 0 {
        return vec![0; weights.len()];
    }
    let mut quotas: Vec<usize> = weights.iter().map(|&w| total * w / sum).collect();
    let assigned: usize = quotas.iter().sum();
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(total * weights[i] % sum), i));
    for &i in order.iter().take(total - assigned) {
        quotas[i] += 1;
    }
    quotas
}

/// Descending, NaN-last score comparison (total order).
fn cmp_scores_desc(a: f64, b: f64) -> std::cmp::Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => std::cmp::Ordering::Equal,
        (true, false) => std::cmp::Ordering::Greater,
        (false, true) => std::cmp::Ordering::Less,
        (false, false) => b.total_cmp(&a),
    }
}

/// An oracle view translating a shard's local rows to global candidate
/// indices.
struct RowOracle<'a> {
    inner: &'a (dyn Oracle + Sync),
    rows: &'a [usize],
}

impl Oracle for RowOracle<'_> {
    fn label(&self, idx: usize) -> bool {
        self.inner.label(self.rows[idx])
    }

    fn queries_answered(&self) -> usize {
        self.inner.queries_answered()
    }
}

/// The report of a shard with no candidates: nothing to fit, nothing
/// predicted.
fn empty_report() -> FitReport {
    FitReport {
        labels: Vec::new(),
        scores: Vec::new(),
        weights: Vec::new(),
        queried: Vec::new(),
        rounds: Vec::new(),
        elapsed: std::time::Duration::ZERO,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_budget_is_exact_and_proportional() {
        assert_eq!(split_budget(10, &[5]), vec![10]);
        assert_eq!(split_budget(10, &[1, 1]), vec![5, 5]);
        let q = split_budget(10, &[3, 1, 1]);
        assert_eq!(q.iter().sum::<usize>(), 10);
        assert_eq!(q[0], 6);
        assert_eq!(split_budget(0, &[3, 1]), vec![0, 0]);
        assert_eq!(split_budget(7, &[0, 0]), vec![0, 0]);
        // Largest remainder: 7 over [2, 2, 3] → quotas [2, 2, 3].
        assert_eq!(split_budget(7, &[2, 2, 3]), vec![2, 2, 3]);
    }

    #[test]
    fn score_order_is_total_and_nan_last() {
        let mut v = [0.2, f64::NAN, 0.9, f64::INFINITY, 0.2];
        v.sort_by(|a, b| cmp_scores_desc(*a, *b));
        assert_eq!(v[0], f64::INFINITY);
        assert_eq!(v[1], 0.9);
        assert!(v[4].is_nan());
    }

    #[test]
    fn manifest_decode_rejects_corruption() {
        assert!(matches!(
            decode_manifest(b"not a manifest at all"),
            Err(SnapshotError::BadMagic)
        ));
        let mut w = Writer::new();
        w.bytes(&MANIFEST_MAGIC);
        w.u32(99);
        w.u32(0);
        assert!(matches!(
            decode_manifest(w.as_bytes()),
            Err(SnapshotError::UnsupportedVersion { found: 99, .. })
        ));
    }
}
