//! Append-only ΔA journaling: per-round checkpoints at O(|ΔA|) instead
//! of O(session).
//!
//! [`snapshot`](crate::snapshot::save) rewrites the whole counted core on every
//! save (~1.4 MB / ~7 ms at table IV scale), yet between two checkpoints
//! the *only* state that changed is a small batch of confirmed anchors —
//! the same observation that makes the in-memory delta path
//! (`C += L·ΔA·R`) cheap. This module mirrors that shape on disk: a
//! **base** snapshot (the existing format v1, unmodified) plus an
//! append-only **journal** of anchor-delta records. A checkpoint appends
//! a few dozen bytes; [`Journal::open`] replays the journal through
//! [`AlignmentSession::update_anchors`] — the deterministic delta path —
//! so the reopened session is **bit-equal** to one reopened from a
//! freshly saved monolithic snapshot (property-tested in
//! `tests/journal_props.rs`, including resumed updates and stats).
//!
//! ## File layout (`<base>.jrnl`)
//!
//! ```text
//! header   "MDAJRNL0" | version u32 | base_len u64 | base_crc u32
//! record*  len u32 | crc u32(payload) | payload
//! payload  kind u8 = 1 AnchorDelta  | n u64 | n × (left u32, right u32)
//!                  = 2 Checkpoint   | n_anchors u64
//!                  = 3 Compacted    | new_base_len u64 | new_base_crc u32
//! ```
//!
//! The header pins the journal to the exact base bytes it extends
//! (length + CRC-32); a journal found next to a different base refuses
//! with [`JournalError::BaseMismatch`] rather than replaying deltas onto
//! the wrong state. Every record is length-prefixed and individually
//! checksummed, which splits corruption into two cleanly distinguishable
//! cases on open:
//!
//! * a **torn tail** — the file ends inside a frame, or the *last* record
//!   fails its CRC — is the expected residue of a crash mid-append. The
//!   intact prefix is replayed and the file is truncated back to it;
//!   never a refused file.
//! * a **damaged interior** — a record fails its CRC with more records
//!   after it — cannot be a torn append; replaying past it would
//!   silently skip a delta, so the open refuses with
//!   [`JournalError::Checksum`].
//!
//! ## Durability model
//!
//! [`Journal::append`] is a buffered write-ahead append: the record
//! reaches the OS before the in-memory update applies (a process crash
//! loses nothing), but is not fsynced per append — that is what keeps an
//! append 2–3 orders of magnitude cheaper than a monolithic save.
//! [`Journal::checkpoint`] is the durability point: it appends a
//! `Checkpoint` record (carrying the anchor count as a replay cross-check)
//! and fsyncs the journal. Power loss between checkpoints can cost at
//! most the un-synced suffix, which the torn-tail rule reclaims cleanly.
//!
//! ## Compaction
//!
//! Compaction folds the journal back into a fresh base without a crash
//! window, and is staged in three steps so the expensive one can run off
//! the owner's lock (the pool's background compactor and the serving
//! tier both rely on this):
//!
//! 1. [`Journal::begin_compact`] — under the owner's lock: appends a
//!    durable `Compacted` record naming the new base's length+CRC to the
//!    *old* journal and remembers the **fold mark** (the journal offset
//!    right after the marker). Appends may continue past the mark.
//! 2. [`Journal::stage_compacted_base`] — **no lock needed**: writes the
//!    new base bytes to a synced temporary sibling. This is the O(base)
//!    I/O that used to stall writers.
//! 3. [`Journal::finish_compact`] — under the lock again, all cheap
//!    renames: publishes the staged base over the old one, then replaces
//!    the journal with a fresh header **plus every record appended after
//!    the fold mark** — deltas that arrived mid-compaction stay
//!    journaled against the new base they were not folded into.
//!
//! [`Journal::compact`] composes the three synchronously. Crash windows:
//! before (3)'s base rename, the old base + old journal survive — the
//! `Compacted` record names a base that does not exist and is ignored on
//! replay, and post-mark deltas replay normally. Between the base rename
//! and the journal replacement, the new base sits next to the old
//! journal: the header mismatches, but [`Journal::open`] finds the
//! `Compacted` record naming exactly the base now on disk, treats every
//! record before it as folded, and replays only the records after it —
//! nothing is lost in either window. When to compact is a policy knob
//! ([`CompactionPolicy`]) so serving tiers can trade journal growth
//! against save cost.

use crate::snapshot::{self, SnapshotError};
use crate::stages::{AlignmentSession, Counted};
use crate::{AnchorEdge, SessionError};
use hetnet::UserId;
use metadiagram::DeltaError;
use serde::bin::{crc32, Error as BinError, Reader, Writer};
use std::fmt;
use std::io::Write;
use std::path::{Path, PathBuf};

/// The 8-byte journal magic: "MDAJRNL" + a format generation digit.
pub const JOURNAL_MAGIC: [u8; 8] = *b"MDAJRNL0";

/// The journal format version this build writes and the only one it
/// reads (same refuse-don't-migrate policy as the base snapshot).
pub const JOURNAL_VERSION: u32 = 1;

/// Fixed header length: magic + version + base_len + base_crc.
const HEADER_LEN: usize = 8 + 4 + 8 + 4;
/// Frame overhead per record: payload length + payload CRC.
const FRAME_LEN: usize = 4 + 4;

const REC_ANCHOR_DELTA: u8 = 1;
const REC_CHECKPOINT: u8 = 2;
const REC_COMPACTED: u8 = 3;

/// When a journal-backed save folds the journal back into its base.
///
/// The knob callers hand to [`crate::SessionPool::set_compaction`] and
/// `ShardedConfig::compaction`; [`Journal::should_compact`] evaluates it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CompactionPolicy {
    /// Never compact implicitly; the journal grows until an explicit
    /// [`Journal::compact`]. The right choice when an external job owns
    /// compaction.
    #[default]
    Never,
    /// Compact once the journal holds at least this many `AnchorDelta`
    /// records. `EveryN(1)` reproduces the old save-everything behavior
    /// with journal durability in between; `EveryN(0)` is treated as
    /// `Never`.
    EveryN(u32),
    /// Compact once the journal's record bytes (header excluded) reach
    /// this size — bounds worst-case replay work on open.
    Bytes(u64),
}

/// Everything that can go wrong appending to, replaying, or compacting a
/// journal.
#[derive(Debug)]
pub enum JournalError {
    /// Reading, writing, or syncing the journal file failed.
    Io(std::io::Error),
    /// The journal file does not start with [`JOURNAL_MAGIC`].
    BadMagic,
    /// The journal's format version is not [`JOURNAL_VERSION`].
    UnsupportedVersion {
        /// Version found in the file.
        found: u32,
        /// The one version this build supports.
        supported: u32,
    },
    /// The journal's header names a base (length + CRC) other than the
    /// base snapshot actually on disk, and the journal is not the residue
    /// of a completed compaction — replaying it would apply deltas to the
    /// wrong state.
    BaseMismatch {
        /// The journal file that refused.
        path: PathBuf,
    },
    /// A record failed its CRC with more records after it — interior
    /// damage, not a torn tail (torn tails are truncated, not refused).
    Checksum {
        /// Byte offset of the damaged record's frame within the journal.
        offset: u64,
    },
    /// A record's payload decoded structurally wrong (bad kind byte,
    /// truncated field, trailing bytes) despite a matching CRC.
    Decode(BinError),
    /// Reading or writing the base snapshot failed.
    Snapshot(SnapshotError),
    /// Replaying an `AnchorDelta` record through the delta path failed —
    /// the journal carries an edge the base's populations cannot hold.
    Replay(SessionError),
    /// A `Checkpoint` record's recorded anchor count disagrees with the
    /// replayed session — the journal and base drifted apart.
    Inconsistent {
        /// The anchor count the `Checkpoint` record expects.
        expected: u64,
        /// The anchor count the replayed session actually has.
        found: u64,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal io: {e}"),
            JournalError::BadMagic => write!(f, "not an anchor journal (bad magic)"),
            JournalError::UnsupportedVersion { found, supported } => write!(
                f,
                "journal format version {found} is not supported (this build reads \
                 version {supported}); compact or re-save"
            ),
            JournalError::BaseMismatch { path } => write!(
                f,
                "journal {} extends a different base snapshot than the one on disk",
                path.display()
            ),
            JournalError::Checksum { offset } => write!(
                f,
                "journal record at byte {offset} failed its checksum with records after it"
            ),
            JournalError::Decode(e) => write!(f, "journal record payload: {e}"),
            JournalError::Snapshot(e) => write!(f, "journal base snapshot: {e}"),
            JournalError::Replay(e) => write!(f, "journal replay: {e}"),
            JournalError::Inconsistent { expected, found } => write!(
                f,
                "journal checkpoint expects {expected} anchors but replay produced {found}"
            ),
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JournalError::Io(e) => Some(e),
            JournalError::Decode(e) => Some(e),
            JournalError::Snapshot(e) => Some(e),
            JournalError::Replay(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e)
    }
}

impl From<BinError> for JournalError {
    fn from(e: BinError) -> Self {
        JournalError::Decode(e)
    }
}

impl From<SnapshotError> for JournalError {
    fn from(e: SnapshotError) -> Self {
        JournalError::Snapshot(e)
    }
}

impl From<SessionError> for JournalError {
    fn from(e: SessionError) -> Self {
        JournalError::Replay(e)
    }
}

impl JournalError {
    /// Collapses a journal error into the snapshot error space — for the
    /// monolithic [`crate::snapshot::save`] wrapper, whose callers signed
    /// up for [`SnapshotError`]. Only `Io`/`Snapshot` can actually arise
    /// on that path.
    pub(crate) fn demote(self) -> SnapshotError {
        match self {
            JournalError::Io(e) => SnapshotError::Io(e),
            JournalError::Snapshot(e) => e,
            other => SnapshotError::Decode(BinError::Malformed(other.to_string())),
        }
    }
}

/// One decoded journal record.
enum Record {
    /// A batch of confirmed anchors to fold through the delta path.
    AnchorDelta(Vec<AnchorEdge>),
    /// A durability marker carrying the writer's anchor count as a
    /// replay cross-check.
    Checkpoint { n_anchors: u64 },
    /// A compaction intent marker naming the new base it produced.
    Compacted { base_len: u64, base_crc: u32 },
}

fn header_bytes(base_len: u64, base_crc: u32) -> Vec<u8> {
    let mut w = Writer::with_capacity(HEADER_LEN);
    w.bytes(&JOURNAL_MAGIC);
    w.u32(JOURNAL_VERSION);
    w.u64(base_len);
    w.u32(base_crc);
    w.into_bytes()
}

fn frame(payload: &[u8]) -> Vec<u8> {
    let mut w = Writer::with_capacity(FRAME_LEN + payload.len());
    w.u32(payload.len() as u32);
    w.u32(crc32(payload));
    w.bytes(payload);
    w.into_bytes()
}

fn delta_payload(edges: &[AnchorEdge]) -> Vec<u8> {
    let mut w = Writer::with_capacity(1 + 8 + edges.len() * 8);
    w.u8(REC_ANCHOR_DELTA);
    w.u64(edges.len() as u64);
    for e in edges {
        w.u32(e.left.0);
        w.u32(e.right.0);
    }
    w.into_bytes()
}

fn checkpoint_payload(n_anchors: u64) -> Vec<u8> {
    let mut w = Writer::with_capacity(1 + 8);
    w.u8(REC_CHECKPOINT);
    w.u64(n_anchors);
    w.into_bytes()
}

fn compacted_payload(base_len: u64, base_crc: u32) -> Vec<u8> {
    let mut w = Writer::with_capacity(1 + 8 + 4);
    w.u8(REC_COMPACTED);
    w.u64(base_len);
    w.u32(base_crc);
    w.into_bytes()
}

/// Counts the `AnchorDelta` frames in a frame-aligned byte run (a journal
/// suffix carried across a compaction). Tolerates a torn tail — the frame
/// after the tear is simply not counted, matching what replay would keep.
fn count_delta_frames(frames: &[u8]) -> u32 {
    let mut n = 0u32;
    let mut pos = 0usize;
    while pos + FRAME_LEN <= frames.len() {
        let mut r = Reader::new(&frames[pos..pos + FRAME_LEN]);
        let (Ok(payload_len), Ok(_crc)) = (r.u32(), r.u32()) else {
            break;
        };
        let payload_len = payload_len as usize;
        let Some(end) = pos
            .checked_add(FRAME_LEN + payload_len)
            .filter(|&e| e <= frames.len())
        else {
            break;
        };
        if frames.get(pos + FRAME_LEN) == Some(&REC_ANCHOR_DELTA) {
            n += 1;
        }
        pos = end;
    }
    n
}

fn decode_payload(bytes: &[u8]) -> Result<Record, JournalError> {
    let mut r = Reader::new(bytes);
    let record = match r.u8()? {
        REC_ANCHOR_DELTA => {
            // Each edge is 8 bytes; `seq_len` bounds the count by the
            // bytes actually present before the prealloc.
            let n = r.seq_len(8)?;
            let mut edges = Vec::with_capacity(n);
            for _ in 0..n {
                let left = UserId(r.u32()?);
                let right = UserId(r.u32()?);
                edges.push(AnchorEdge { left, right });
            }
            Record::AnchorDelta(edges)
        }
        REC_CHECKPOINT => Record::Checkpoint {
            n_anchors: r.u64()?,
        },
        REC_COMPACTED => Record::Compacted {
            base_len: r.u64()?,
            base_crc: r.u32()?,
        },
        kind => {
            return Err(JournalError::Decode(BinError::Malformed(format!(
                "unknown journal record kind {kind}"
            ))))
        }
    };
    if !r.is_exhausted() {
        return Err(JournalError::Decode(BinError::Malformed(format!(
            "{} trailing bytes in a journal record",
            r.remaining()
        ))));
    }
    Ok(record)
}

/// Scans the record region (header already consumed) and returns the
/// decoded records plus the valid length of the file — `< bytes.len()`
/// exactly when a torn tail must be truncated.
fn scan(bytes: &[u8]) -> Result<(Vec<Record>, usize), JournalError> {
    let mut records = Vec::new();
    let mut pos = HEADER_LEN;
    while pos < bytes.len() {
        // A frame that cannot even hold its own prefix is a torn tail.
        let Some(rest) = bytes.len().checked_sub(pos + FRAME_LEN) else {
            return Ok((records, pos));
        };
        let mut r = Reader::new(&bytes[pos..pos + FRAME_LEN]);
        let payload_len = r.u32()? as usize;
        let crc = r.u32()?;
        if payload_len > rest {
            // The payload extends past EOF: torn mid-append.
            return Ok((records, pos));
        }
        let payload = &bytes[pos + FRAME_LEN..pos + FRAME_LEN + payload_len];
        if crc32(payload) != crc {
            if pos + FRAME_LEN + payload_len == bytes.len() {
                // The damaged record is the last one — indistinguishable
                // from a torn append; drop it.
                return Ok((records, pos));
            }
            // Interior damage with intact records after it: refuse.
            return Err(JournalError::Checksum { offset: pos as u64 });
        }
        records.push(decode_payload(payload)?);
        pos += FRAME_LEN + payload_len;
    }
    Ok((records, pos))
}

/// An open append handle over a `<base>.jrnl` file paired with its base
/// snapshot; see the [module docs](self) for the format and durability
/// model.
pub struct Journal {
    base_path: PathBuf,
    journal_path: PathBuf,
    file: std::fs::File,
    journal_len: u64,
    delta_records: u32,
    base_len: u64,
    base_crc: u32,
    /// An in-flight staged compaction (`begin_compact` called, not yet
    /// finished); [`Journal::should_compact`] is `false` while one is
    /// pending so policy checks cannot double-trigger.
    pending: Option<PendingCompaction>,
}

/// Book-keeping for a compaction between [`Journal::begin_compact`] and
/// [`Journal::finish_compact`].
#[derive(Debug, Clone, Copy)]
struct PendingCompaction {
    new_len: u64,
    new_crc: u32,
    /// Journal offset right after the durable `Compacted` marker; records
    /// at or past this offset were appended mid-compaction and must
    /// survive into the fresh journal.
    fold_mark: u64,
}

/// A new base snapshot written to a synced temporary file by
/// [`Journal::stage_compacted_base`], waiting for
/// [`Journal::finish_compact`] to publish it (or [`StagedBase::discard`]
/// to drop it).
#[derive(Debug)]
pub struct StagedBase {
    tmp: PathBuf,
    new_len: u64,
    new_crc: u32,
}

impl StagedBase {
    /// Removes the staged temporary file without publishing it — for
    /// callers whose compaction target disappeared (a vacated pool slot,
    /// a re-attached journal) between staging and finishing.
    pub fn discard(self) {
        std::fs::remove_file(&self.tmp).ok();
    }
}

impl fmt::Debug for Journal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Journal")
            .field("base", &self.base_path)
            .field("journal_len", &self.journal_len)
            .field("delta_records", &self.delta_records)
            .finish()
    }
}

/// Writes a fresh header-only journal next to `journal_path` (atomically,
/// by rename) and reopens it for appending.
fn write_fresh(
    journal_path: &Path,
    base_len: u64,
    base_crc: u32,
) -> Result<std::fs::File, JournalError> {
    snapshot::write_atomic(journal_path, &header_bytes(base_len, base_crc))?;
    Ok(std::fs::OpenOptions::new()
        .append(true)
        .open(journal_path)?)
}

impl Journal {
    /// The journal path paired with a base snapshot path: the sibling
    /// file with `.jrnl` appended to the full file name.
    pub fn path_for(base: &Path) -> PathBuf {
        let mut p = base.as_os_str().to_owned();
        p.push(".jrnl");
        PathBuf::from(p)
    }

    /// Publishes `base_bytes` as the base snapshot at `base_path`
    /// (atomically, by rename) and starts a fresh, empty journal beside
    /// it.
    ///
    /// # Errors
    /// [`JournalError::Snapshot`] / [`JournalError::Io`] when either
    /// write fails.
    pub fn create(base_path: impl AsRef<Path>, base_bytes: &[u8]) -> Result<Journal, JournalError> {
        let base_path = base_path.as_ref().to_path_buf();
        snapshot::write_atomic(&base_path, base_bytes)?;
        let base_len = base_bytes.len() as u64;
        let base_crc = crc32(base_bytes);
        let journal_path = Journal::path_for(&base_path);
        let file = write_fresh(&journal_path, base_len, base_crc)?;
        Ok(Journal {
            base_path,
            journal_path,
            file,
            journal_len: HEADER_LEN as u64,
            delta_records: 0,
            base_len,
            base_crc,
            pending: None,
        })
    }

    /// Opens the base snapshot at `base_path`, replays its journal (if
    /// any) through the delta path, and returns the reconstructed session
    /// with the journal ready for further appends. A missing journal file
    /// is a plain monolithic snapshot: a fresh journal is started. A torn
    /// tail is truncated; see the [module docs](self) for the full
    /// corruption policy.
    ///
    /// # Errors
    /// See [`JournalError`].
    pub fn open(
        base_path: impl AsRef<Path>,
    ) -> Result<(AlignmentSession<Counted>, Journal), JournalError> {
        let base_path = base_path.as_ref().to_path_buf();
        let base_bytes = std::fs::read(&base_path).map_err(SnapshotError::Io)?;
        let mut session = snapshot::from_bytes(&base_bytes)?;
        let base_len = base_bytes.len() as u64;
        let base_crc = crc32(&base_bytes);
        drop(base_bytes);

        let journal_path = Journal::path_for(&base_path);
        let jbytes = match std::fs::read(&journal_path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                let file = write_fresh(&journal_path, base_len, base_crc)?;
                return Ok((
                    session,
                    Journal {
                        base_path,
                        journal_path,
                        file,
                        journal_len: HEADER_LEN as u64,
                        delta_records: 0,
                        base_len,
                        base_crc,
                        pending: None,
                    },
                ));
            }
            Err(e) => return Err(JournalError::Io(e)),
        };

        let mut r = Reader::new(&jbytes);
        let magic = r
            .bytes(JOURNAL_MAGIC.len())
            .map_err(|_| JournalError::BadMagic)?;
        if magic != JOURNAL_MAGIC {
            return Err(JournalError::BadMagic);
        }
        let version = r.u32()?;
        if version != JOURNAL_VERSION {
            return Err(JournalError::UnsupportedVersion {
                found: version,
                supported: JOURNAL_VERSION,
            });
        }
        let journal_base_len = r.u64()?;
        let journal_base_crc = r.u32()?;

        if (journal_base_len, journal_base_crc) != (base_len, base_crc) {
            // The journal extends some other base. The one legitimate way
            // here: a compaction that crashed after publishing its new
            // base but before replacing the journal — recognisable by a
            // `Compacted` record naming exactly the base now on disk.
            // Records before that marker were folded into the new base;
            // records after it arrived mid-compaction and must replay onto
            // it (and survive into the rebuilt journal). Anything else
            // refuses.
            let fold = scan(&jbytes).ok().and_then(|(records, _)| {
                records
                    .iter()
                    .rposition(|r| {
                        matches!(
                            r,
                            Record::Compacted {
                                base_len: l,
                                base_crc: c,
                            } if (*l, *c) == (base_len, base_crc)
                        )
                    })
                    .map(|idx| (records, idx))
            });
            let Some((records, idx)) = fold else {
                return Err(JournalError::BaseMismatch { path: journal_path });
            };
            let mut fresh = header_bytes(base_len, base_crc);
            let mut delta_records = 0u32;
            for record in &records[idx + 1..] {
                match record {
                    Record::AnchorDelta(edges) => {
                        session.update_anchors(edges)?;
                        delta_records += 1;
                        fresh.extend_from_slice(&frame(&delta_payload(edges)));
                    }
                    Record::Checkpoint { n_anchors } => {
                        let found = session.n_anchors() as u64;
                        if *n_anchors != found {
                            return Err(JournalError::Inconsistent {
                                expected: *n_anchors,
                                found,
                            });
                        }
                        fresh.extend_from_slice(&frame(&checkpoint_payload(*n_anchors)));
                    }
                    // A later aborted fold's marker: inert, but keep it so
                    // the rebuilt journal stays a faithful suffix copy.
                    Record::Compacted { base_len, base_crc } => {
                        fresh.extend_from_slice(&frame(&compacted_payload(*base_len, *base_crc)));
                    }
                }
            }
            snapshot::write_atomic(&journal_path, &fresh)?;
            let file = std::fs::OpenOptions::new()
                .append(true)
                .open(&journal_path)?;
            return Ok((
                session,
                Journal {
                    base_path,
                    journal_path,
                    file,
                    journal_len: fresh.len() as u64,
                    delta_records,
                    base_len,
                    base_crc,
                    pending: None,
                },
            ));
        }

        let (records, valid_len) = scan(&jbytes)?;
        let mut delta_records = 0u32;
        for record in records {
            match record {
                Record::AnchorDelta(edges) => {
                    session.update_anchors(&edges)?;
                    delta_records += 1;
                }
                Record::Checkpoint { n_anchors } => {
                    let found = session.n_anchors() as u64;
                    if n_anchors != found {
                        return Err(JournalError::Inconsistent {
                            expected: n_anchors,
                            found,
                        });
                    }
                }
                // A `Compacted` record under a matching header is an
                // aborted compaction (the new base never landed): the
                // deltas before it are already applied, so it is inert.
                Record::Compacted { .. } => {}
            }
        }

        let file = std::fs::OpenOptions::new()
            .append(true)
            .open(&journal_path)?;
        if (valid_len as u64) < jbytes.len() as u64 {
            // Torn tail: reclaim the intact prefix.
            file.set_len(valid_len as u64)?;
        }
        Ok((
            session,
            Journal {
                base_path,
                journal_path,
                file,
                journal_len: valid_len as u64,
                delta_records,
                base_len,
                base_crc,
                pending: None,
            },
        ))
    }

    /// Appends one `AnchorDelta` record. Write-ahead by contract: callers
    /// append **before** applying the same edges in memory, so the
    /// journal is never behind the state it reconstructs. Buffered (no
    /// fsync) — see the durability model in the [module docs](self).
    ///
    /// # Errors
    /// [`JournalError::Io`] when the append fails; the in-memory session
    /// must then be left unchanged by the caller.
    pub fn append(&mut self, edges: &[AnchorEdge]) -> Result<(), JournalError> {
        let framed = frame(&delta_payload(edges));
        self.file.write_all(&framed)?;
        self.journal_len += framed.len() as u64;
        self.delta_records += 1;
        Ok(())
    }

    /// Appends a `Checkpoint` record carrying `n_anchors` as a replay
    /// cross-check and fsyncs the journal — the durability point of the
    /// write-ahead scheme.
    ///
    /// # Errors
    /// [`JournalError::Io`] when the append or sync fails.
    pub fn checkpoint(&mut self, n_anchors: usize) -> Result<(), JournalError> {
        let framed = frame(&checkpoint_payload(n_anchors as u64));
        self.file.write_all(&framed)?;
        self.file.sync_data()?;
        self.journal_len += framed.len() as u64;
        Ok(())
    }

    /// Folds the journal back into a fresh base: publishes `base_bytes`
    /// as the new base snapshot and resets the journal to an empty one,
    /// with no crash window (see the compaction protocol in the
    /// [module docs](self)). This is [`Journal::begin_compact`] →
    /// [`Journal::stage_compacted_base`] → [`Journal::finish_compact`]
    /// composed synchronously; background compactors call the three
    /// steps themselves so the staging I/O runs off the owner's lock.
    ///
    /// # Errors
    /// [`JournalError::Io`] / [`JournalError::Snapshot`] when a write
    /// fails; the old base+journal pair stays replayable in that case.
    pub fn compact(&mut self, base_bytes: &[u8]) -> Result<(), JournalError> {
        self.begin_compact(base_bytes)?;
        let staged = match Journal::stage_compacted_base(&self.base_path, base_bytes) {
            Ok(staged) => staged,
            Err(e) => {
                // The marker is durable but names a base that will never
                // land — inert on replay. Clearing the pending flag lets
                // a later policy check retry.
                self.pending = None;
                return Err(e);
            }
        };
        self.finish_compact(staged)
    }

    /// Step 1 of a staged compaction (see the [module docs](self)):
    /// appends the durable `Compacted` intent marker naming the base
    /// `base_bytes` will become, fsyncs it, and remembers the fold mark.
    /// Cheap enough to run under the owner's lock; records appended after
    /// this call are preserved by [`Journal::finish_compact`].
    ///
    /// # Errors
    /// [`JournalError::Io`] when the marker append or sync fails (the
    /// journal stays exactly as it was, plus at most a torn tail).
    /// Calling again while a compaction is already pending is refused as
    /// [`JournalError::Decode`] — one fold at a time per journal.
    pub fn begin_compact(&mut self, base_bytes: &[u8]) -> Result<(), JournalError> {
        if self.pending.is_some() {
            return Err(JournalError::Decode(BinError::Malformed(
                "a staged compaction is already pending on this journal".into(),
            )));
        }
        let new_len = base_bytes.len() as u64;
        let new_crc = crc32(base_bytes);
        let framed = frame(&compacted_payload(new_len, new_crc));
        self.file.write_all(&framed)?;
        self.file.sync_data()?;
        self.journal_len += framed.len() as u64;
        self.pending = Some(PendingCompaction {
            new_len,
            new_crc,
            fold_mark: self.journal_len,
        });
        Ok(())
    }

    /// True when [`Journal::begin_compact`] has run without a matching
    /// [`Journal::finish_compact`] yet.
    pub fn compaction_pending(&self) -> bool {
        self.pending.is_some()
    }

    /// Drops an in-flight staged compaction without publishing it — the
    /// durable marker it wrote names a base that never lands, which
    /// replay ignores. Policy checks become live again.
    pub fn abort_compact(&mut self) {
        self.pending = None;
    }

    /// Step 2 of a staged compaction: writes `base_bytes` to a synced
    /// temporary sibling of `base_path`. An associated function on
    /// purpose — it touches neither the journal nor the base, so a
    /// background job runs it **without** holding the journal owner's
    /// lock while appends continue.
    ///
    /// # Errors
    /// [`JournalError::Io`] when the write or sync fails (the temporary
    /// file is removed).
    pub fn stage_compacted_base(
        base_path: &Path,
        base_bytes: &[u8],
    ) -> Result<StagedBase, JournalError> {
        static STAGE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let seq = STAGE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let mut tmp = base_path.as_os_str().to_owned();
        tmp.push(format!(".cstage.{}-{seq}", std::process::id()));
        let tmp = PathBuf::from(tmp);
        let write_synced = || -> std::io::Result<()> {
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(base_bytes)?;
            file.sync_all()
        };
        if let Err(e) = write_synced() {
            std::fs::remove_file(&tmp).ok();
            return Err(JournalError::Io(e));
        }
        Ok(StagedBase {
            tmp,
            new_len: base_bytes.len() as u64,
            new_crc: crc32(base_bytes),
        })
    }

    /// Step 3 of a staged compaction, under the owner's lock again: all
    /// renames. Publishes the staged base over the old one, then replaces
    /// the journal with a fresh header **plus the records appended after
    /// the fold mark** — mid-compaction deltas stay journaled against the
    /// new base they were not folded into. Both crash windows recover on
    /// the next [`Journal::open`] (see the [module docs](self)).
    ///
    /// # Errors
    /// [`JournalError::Decode`] when `staged` does not match the pending
    /// compaction (the staged file is discarded, the pending fold stays
    /// armed); [`JournalError::Io`] / [`JournalError::Snapshot`] when a
    /// rename or the journal rewrite fails — the pending flag is cleared
    /// and the on-disk pair stays recoverable by open.
    pub fn finish_compact(&mut self, staged: StagedBase) -> Result<(), JournalError> {
        let Some(pending) = self.pending else {
            staged.discard();
            return Err(JournalError::Decode(BinError::Malformed(
                "finish_compact without a pending begin_compact".into(),
            )));
        };
        if (staged.new_len, staged.new_crc) != (pending.new_len, pending.new_crc) {
            staged.discard();
            return Err(JournalError::Decode(BinError::Malformed(
                "staged base does not match the pending compaction marker".into(),
            )));
        }
        // Records appended after the fold mark (mid-compaction traffic)
        // must survive into the fresh journal.
        let result = (|| -> Result<(u64, u32), JournalError> {
            let jbytes = std::fs::read(&self.journal_path)?;
            let fold = (pending.fold_mark as usize).min(jbytes.len());
            let suffix = jbytes[fold..].to_vec();
            drop(jbytes);
            std::fs::rename(&staged.tmp, &self.base_path)?;
            let mut fresh = header_bytes(pending.new_len, pending.new_crc);
            fresh.extend_from_slice(&suffix);
            snapshot::write_atomic(&self.journal_path, &fresh)?;
            self.file = std::fs::OpenOptions::new()
                .append(true)
                .open(&self.journal_path)?;
            Ok((fresh.len() as u64, count_delta_frames(&suffix)))
        })();
        // Pending clears on every outcome: on failure the disk pair is
        // recovered by the next open, and leaving the flag set would
        // block all future compactions of this journal.
        self.pending = None;
        let (journal_len, delta_records) = result?;
        self.base_len = pending.new_len;
        self.base_crc = pending.new_crc;
        self.journal_len = journal_len;
        self.delta_records = delta_records;
        Ok(())
    }

    /// True when `policy` says the journal has grown enough to fold back
    /// into its base. Always false while a staged compaction is pending —
    /// policy checks cannot double-trigger a fold.
    pub fn should_compact(&self, policy: CompactionPolicy) -> bool {
        if self.pending.is_some() {
            return false;
        }
        match policy {
            CompactionPolicy::Never => false,
            CompactionPolicy::EveryN(n) => n > 0 && self.delta_records >= n,
            CompactionPolicy::Bytes(b) => self.journal_len - HEADER_LEN as u64 >= b,
        }
    }

    /// The base snapshot path this journal extends.
    pub fn base_path(&self) -> &Path {
        &self.base_path
    }

    /// Byte length of the base snapshot this journal extends.
    pub fn base_len(&self) -> u64 {
        self.base_len
    }

    /// The journal file path (`<base>.jrnl`).
    pub fn journal_path(&self) -> &Path {
        &self.journal_path
    }

    /// Current journal file length in bytes (header included).
    pub fn journal_bytes(&self) -> u64 {
        self.journal_len
    }

    /// Number of `AnchorDelta` records since the base was last written.
    pub fn delta_records(&self) -> u32 {
        self.delta_records
    }
}

/// Writes `base_bytes` as a plain monolithic snapshot at `base_path` and
/// unlinks any stale sibling journal — the journal-layer primitive
/// [`crate::snapshot::save`] wraps. Without the unlink, the next
/// journal-aware open would find a journal pinned to the *previous* base
/// and refuse with [`JournalError::BaseMismatch`].
///
/// # Errors
/// [`JournalError::Snapshot`] / [`JournalError::Io`] when a write fails.
pub fn checkpoint_monolithic(base_path: &Path, base_bytes: &[u8]) -> Result<(), JournalError> {
    snapshot::write_atomic(base_path, base_bytes)?;
    match std::fs::remove_file(Journal::path_for(base_path)) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(JournalError::Io(e)),
    }
}

/// Pre-validates anchor endpoints against the anchor matrix `shape` —
/// the exact check the delta path performs — so a write-ahead caller can
/// reject a bad batch **before** journaling it. Without this, an
/// out-of-range edge would land in the journal, fail to apply in memory,
/// and poison every later replay.
pub(crate) fn validate_edges(
    shape: (usize, usize),
    edges: &[AnchorEdge],
) -> Result<(), SessionError> {
    let (nl, nr) = shape;
    for e in edges {
        if e.left.index() >= nl {
            return Err(SessionError::Delta(DeltaError::AnchorOutOfRange {
                side: "left",
                index: e.left.index(),
                count: nl,
            }));
        }
        if e.right.index() >= nr {
            return Err(SessionError::Delta(DeltaError::AnchorOutOfRange {
                side: "right",
                index: e.right.index(),
                count: nr,
            }));
        }
    }
    Ok(())
}
