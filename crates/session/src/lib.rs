//! # session — the staged, artifact-owning alignment pipeline API
//!
//! The paper's ActiveIter loop is inherently *incremental*: each round
//! confirms a handful of anchor links and re-derives the meta-diagram
//! counts from the grown anchor matrix. The free functions in `eval` are
//! batch-shaped (build engine → count catalog → extract features → fit,
//! from scratch each time); this crate is the composable surface those
//! functions now wrap, and the one callers use when they need to *reuse*
//! work across rounds.
//!
//! An [`AlignmentSession`] moves through typed stages, each **owning** its
//! artifacts (nothing borrows the networks after counting):
//!
//! ```text
//! SessionBuilder ──count()──▶ AlignmentSession<Counted>
//!        anchors, catalog        │ owns: anchor CSR, per-diagram count
//!        threading               │ matrices + their L/Lᵀ/R factor chains
//!                                │
//!                  featurize(candidates)
//!                                ▼
//!                    AlignmentSession<Featurized>
//!                                │ + proximity matrices, feature matrix
//!                                │
//!                  fit(..) / run_active(..)
//!                                ▼
//!                    AlignmentSession<Fitted>
//!                                  + the fitted model's FitReport
//! ```
//!
//! The heart of the API is [`AlignmentSession::update_anchors`]: confirmed
//! anchors are applied as the sparse low-rank recount `C += L·ΔA·R`
//! ([`sparsela::spgemm_lowrank`] through [`metadiagram::delta`]) instead of
//! a full catalog recount, and only the downstream artifacts that actually
//! depend on the anchor matrix are refreshed (anchor-free attribute
//! features are untouched; a fitted model is invalidated *by the type
//! system* — `update_anchors` exists on `Counted` and `Featurized` only,
//! so stale fits cannot be observed). Per-round cost scales with `|ΔA|`,
//! not with the catalog — which is what makes the active-query loop
//! interactive at paper scale.
//!
//! Because every stage owns its artifacts, staged state is also
//! **restartable and shardable**:
//!
//! * [`snapshot`] persists a `Counted` stage to a versioned, checksummed
//!   file and reopens it bit-identically in a fresh process — the full
//!   catalog count is paid once per *dataset*, not once per process
//!   (format spec: `docs/SNAPSHOT_FORMAT.md`);
//! * [`pool`] serves many concurrent sessions in one process — slots
//!   opened from snapshots, per-slot staged state, batch updates fanned
//!   out over a bounded worker budget;
//! * [`workers`] is the panic-safe, order-preserving fan-out primitive
//!   the pool (and `eval::multi`) shard with;
//! * [`serve`] puts pools behind process boundaries — a coordinator
//!   shards slots across N worker processes over a framed pipe
//!   protocol, with write-ahead journaling, deadlines, and
//!   restart-and-replay from base+journal when a worker dies.
//!
//! ## Example
//!
//! ```
//! use session::{RecountPolicy, SessionBuilder};
//! use activeiter::query::ConflictQuery;
//! use activeiter::{ModelConfig, VecOracle};
//!
//! let world = datagen::generate(&datagen::presets::tiny(7));
//! let anchors = world.truth().links()[..10].to_vec();
//! let candidates: Vec<_> = world.truth().iter().map(|l| (l.left, l.right)).collect();
//!
//! // Counted: one full catalog count, factor chains harvested.
//! let counted = SessionBuilder::new(world.left(), world.right())
//!     .anchors(anchors)
//!     .count()
//!     .expect("generated networks share attribute universes");
//!
//! // Featurized: proximities + the dense feature matrix.
//! let session = counted.featurize(candidates);
//! assert_eq!(session.features().n_features(), 31);
//!
//! // Fitted: drive the paper's active loop, refreshing features from the
//! // confirmed anchors via the delta path after every round.
//! let truth: Vec<bool> = vec![true; session.candidates().len()];
//! let config = ModelConfig { budget: 10, ..Default::default() };
//! let mut strategy = ConflictQuery::new(config.similar_tau, config.margin_delta);
//! let (fitted, run) = session
//!     .run_active(
//!         (0..10).collect(),
//!         &VecOracle::new(truth),
//!         &mut strategy,
//!         &config,
//!         RecountPolicy::Delta,
//!     )
//!     .expect("anchors come from the candidate set");
//! assert_eq!(fitted.stats().full_counts, 1); // counted once, updated since
//! assert!(run.fit.labels.iter().any(|&l| l == 1.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod active;
pub mod journal;
pub mod pool;
pub mod serve;
pub mod sharded;
pub mod snapshot;
mod stages;
pub mod workers;

pub use active::{ActiveRunReport, RecountPolicy, RoundStat};
pub use journal::{CompactionPolicy, Journal, JournalError};
pub use metadiagram::delta::{CountMerge, StackRegions};
pub use pool::{PoolError, SessionPool};
pub use serve::{Coordinator, ServeConfig, ServeError, WorkerSpec};
pub use sharded::{
    manifest_info, ManifestInfo, RoutingSummary, ShardFitReport, ShardedConfig, ShardedError,
    ShardedSession, ShardedUpdate, StitchedAlignment, StitchedLink,
};
pub use snapshot::SnapshotError;
pub use stages::{AlignmentSession, Counted, Featurized, Fitted, ProximityRefresh, SessionBuilder};

use metadiagram::count::EngineError;
use metadiagram::DeltaError;
use std::fmt;

/// A single anchor edge confirmed between the two networks — the unit of
/// incremental update. Identical in shape and meaning to
/// [`hetnet::AnchorLink`]; the alias marks the *role*: edges fed to
/// [`AlignmentSession::update_anchors`] are confirmed during a session, as
/// opposed to the training anchors a session is built from.
pub type AnchorEdge = hetnet::AnchorLink;

/// Everything that can go wrong inside a session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// Wiring the counting core failed (anchor shape, attribute universes).
    Engine(EngineError),
    /// Building the anchor matrix failed (endpoint out of range).
    Anchors(hetnet::HetNetError),
    /// An incremental update failed (endpoint out of range).
    Delta(DeltaError),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Engine(e) => write!(f, "count engine: {e}"),
            SessionError::Anchors(e) => write!(f, "anchor matrix: {e}"),
            SessionError::Delta(e) => write!(f, "anchor update: {e}"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<EngineError> for SessionError {
    fn from(e: EngineError) -> Self {
        SessionError::Engine(e)
    }
}

impl From<hetnet::HetNetError> for SessionError {
    fn from(e: hetnet::HetNetError) -> Self {
        SessionError::Anchors(e)
    }
}

impl From<DeltaError> for SessionError {
    fn from(e: DeltaError) -> Self {
        SessionError::Delta(e)
    }
}
