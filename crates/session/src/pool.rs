//! Many concurrent sessions over one process: the snapshot-serving pool.
//!
//! The active-alignment serving story (ROADMAP "Session checkpointing /
//! serving") needs more than one query stream per process: each client —
//! a fold rotation, a network pair, a tenant — owns an
//! [`AlignmentSession`] with its own staged state, while the process
//! bounds how many of them make progress at once. [`SessionPool`] is that
//! shard manager:
//!
//! * sessions enter the pool either live ([`SessionPool::insert`]) or by
//!   **opening a base snapshot + ΔA journal** ([`SessionPool::open`] /
//!   [`SessionPool::open_many`], the latter sharding the replay work
//!   across the worker budget) — at paper scale, opening is the
//!   difference between milliseconds and a full catalog recount per
//!   session (the `snapshot` bench bin measures it);
//! * each slot tracks its session's **staged state** (`Counted` or
//!   `Featurized`) behind its own lock, so independent sessions never
//!   contend and a batch touching one session many times serializes
//!   correctly;
//! * batch operations ([`SessionPool::update_many`] /
//!   [`SessionPool::save_many`]) fan out over the bounded, panic-safe,
//!   order-preserving worker runner ([`crate::workers::run_ordered`]) —
//!   the same pattern `eval::multi` shards pairwise evaluation with —
//!   returning results in job order.
//!
//! ## Write-ahead journaling
//!
//! A slot opened from disk (or explicitly journaled via
//! [`SessionPool::attach_journal`]) carries a [`Journal`]: every anchor
//! update is **appended to the journal before it is applied in memory**,
//! under the slot lock, so the on-disk record is never behind the state
//! it reconstructs. The ordering contract, precisely:
//!
//! 1. the batch is pre-validated against the anchor shape (the exact
//!    check the delta path performs), so a batch that would be refused in
//!    memory is refused *before* it reaches the journal;
//! 2. the `AnchorDelta` record is appended (buffered write — the OS has
//!    it, a process crash loses nothing);
//! 3. the in-memory update applies.
//!
//! If (2) fails, memory is untouched and the journal holds at most a
//! torn tail, which the next open truncates. A no-op batch (all edges
//! already known) is journaled too and replays as the same no-op —
//! replayed stats stay bit-equal. [`SessionPool::save`] on a journaled
//! slot appends a fsynced `Checkpoint` record — O(|ΔA|), not O(session).
//!
//! ## Background compaction
//!
//! When the pool's [`CompactionPolicy`] ([`SessionPool::set_compaction`])
//! says a journal has grown enough, [`SessionPool::save`] /
//! [`SessionPool::checkpoint`] no longer fold it inline — the old
//! behavior held the slot lock across an O(session) base write, stalling
//! every concurrent update on that slot for the full compaction. Instead
//! the caller runs only [`Journal::begin_compact`] under the lock (a
//! fsynced marker append, O(1)) and hands the fold to a single shared
//! **compactor thread**, which stages the new base **off-lock** while
//! updates keep flowing (they land after the fold mark and survive), then
//! re-takes the lock for [`Journal::finish_compact`] — cheap renames.
//! [`SessionPool::flush_compactions`] drains the queue and reports
//! per-slot failures; a failed fold leaves the base+journal pair exactly
//! as durable as before and re-arms the policy. Serving tiers that never
//! call `save` trigger the same machinery via
//! [`SessionPool::maybe_compact`].
//!
//! Fitted stages stay out of the pool by design: a fit is a terminal,
//! read-only artifact ([`AlignmentSession::into_report`]); serving keeps
//! slots at the stage where anchor feedback can still be folded in.
//!
//! ## Example
//!
//! ```
//! use session::pool::SessionPool;
//! use session::SessionBuilder;
//!
//! let world = datagen::generate(&datagen::presets::tiny(13));
//! let counted = SessionBuilder::new(world.left(), world.right())
//!     .anchors(world.truth().links()[..6].to_vec())
//!     .count()
//!     .unwrap();
//!
//! let mut pool = SessionPool::new(2);
//! let a = pool.insert(counted.clone());
//! let b = pool.insert(counted);
//! let extra = world.truth().links()[6..10].to_vec();
//! let results = pool.update_many(&[(a, extra.clone()), (b, extra)]);
//! assert_eq!(results.len(), 2);
//! assert_eq!(*results[0].as_ref().unwrap(), 4);
//! assert_eq!(pool.stats(b).unwrap().full_counts, 1); // still no recount
//! ```

use crate::journal::{self, CompactionPolicy, Journal, JournalError};
use crate::snapshot::{self, SnapshotError};
use crate::stages::{AlignmentSession, Counted, Featurized};
use crate::workers::run_ordered;
use crate::{AnchorEdge, SessionError};
use hetnet::UserId;
use metadiagram::DeltaStats;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// Opaque handle to a pooled session. Ids are dense indices in insertion
/// order and are never reused within a pool's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(usize);

impl SessionId {
    /// The slot index (stable for the pool's lifetime).
    pub fn index(self) -> usize {
        self.0
    }

    /// Rehydrates an id from a slot index — for routing tables that
    /// persist ids outside the pool (a serving frontend mapping tenants
    /// to slots). Ids are only meaningful to the pool that issued them;
    /// an index the pool never issued surfaces as
    /// [`PoolError::UnknownSession`] on first use.
    pub fn from_index(index: usize) -> Self {
        SessionId(index)
    }
}

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "session#{}", self.0)
    }
}

/// Everything a pool operation can fail with.
#[derive(Debug)]
pub enum PoolError {
    /// The id does not name a slot of this pool.
    UnknownSession(usize),
    /// The slot exists but its session is gone — a panic unwound through
    /// a stage transition and vacated it. The pool stays usable; only
    /// this slot is lost.
    Vacated(usize),
    /// The operation needs the other stage (e.g. featurizing an
    /// already-featurized session).
    WrongStage {
        /// The offending slot.
        id: usize,
        /// The stage the operation required.
        expected: &'static str,
    },
    /// Opening or saving a snapshot failed.
    Snapshot(SnapshotError),
    /// A journal operation failed (write-ahead append, checkpoint,
    /// compaction).
    Journal(JournalError),
    /// The operation needs a journaled slot ([`SessionPool::checkpoint`]
    /// on a live-inserted session that was never
    /// [`attach_journal`](SessionPool::attach_journal)ed).
    Unjournaled(usize),
    /// Opening a specific snapshot file failed — carries the offending
    /// path so a batch open ([`SessionPool::open_many`]) over dozens of
    /// shard files names which one refused, not just how.
    OpenSnapshot {
        /// The snapshot file that failed to open.
        path: std::path::PathBuf,
        /// Why it failed (base snapshot or journal replay).
        source: JournalError,
    },
    /// The underlying session operation failed.
    Session(SessionError),
}

impl fmt::Display for PoolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoolError::UnknownSession(id) => write!(f, "no session #{id} in this pool"),
            PoolError::Vacated(id) => {
                write!(
                    f,
                    "session #{id} was vacated by a panicked stage transition"
                )
            }
            PoolError::WrongStage { id, expected } => {
                write!(f, "session #{id} is not in the {expected} stage")
            }
            PoolError::Snapshot(e) => write!(f, "pool snapshot: {e}"),
            PoolError::Journal(e) => write!(f, "pool journal: {e}"),
            PoolError::Unjournaled(id) => {
                write!(f, "session #{id} has no journal attached")
            }
            PoolError::OpenSnapshot { path, source } => {
                write!(f, "pool snapshot {}: {source}", path.display())
            }
            PoolError::Session(e) => write!(f, "pool session: {e}"),
        }
    }
}

impl std::error::Error for PoolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PoolError::Snapshot(e) => Some(e),
            PoolError::Journal(e) => Some(e),
            PoolError::OpenSnapshot { source, .. } => Some(source),
            PoolError::Session(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SnapshotError> for PoolError {
    fn from(e: SnapshotError) -> Self {
        PoolError::Snapshot(e)
    }
}

impl From<JournalError> for PoolError {
    fn from(e: JournalError) -> Self {
        PoolError::Journal(e)
    }
}

impl From<SessionError> for PoolError {
    fn from(e: SessionError) -> Self {
        PoolError::Session(e)
    }
}

/// A slot's staged state.
enum Staged {
    Counted(AlignmentSession<Counted>),
    Featurized(AlignmentSession<Featurized>),
}

impl Staged {
    /// The counted core's snapshot bytes — identical from either stage
    /// (features and fits are derived artifacts a reopening process
    /// re-derives).
    fn core_bytes(&self) -> Vec<u8> {
        match self {
            Staged::Counted(s) => snapshot::to_bytes(s),
            Staged::Featurized(s) => snapshot::counted_core_to_bytes(&s.catalog, &s.counts),
        }
    }

    fn n_anchors(&self) -> usize {
        match self {
            Staged::Counted(s) => s.n_anchors(),
            Staged::Featurized(s) => s.n_anchors(),
        }
    }

    fn anchor_shape(&self) -> (usize, usize) {
        match self {
            Staged::Counted(s) => s.anchor().shape(),
            Staged::Featurized(s) => s.anchor().shape(),
        }
    }
}

/// One pooled session plus its (optional) write-ahead journal. The two
/// live under the same lock so append-then-apply is atomic per slot.
struct Slot {
    staged: Staged,
    journal: Option<Journal>,
}

impl Slot {
    fn live(staged: Staged) -> Self {
        Slot {
            staged,
            journal: None,
        }
    }
}

/// One fold handed to the compactor thread: the slot to finish on, the
/// base bytes captured under the lock at `begin_compact` time (the state
/// at the fold mark — capturing later would fold in post-mark deltas the
/// suffix replays again), and where to stage them.
struct CompactionJob {
    slot: Arc<Mutex<Option<Slot>>>,
    index: usize,
    base_path: PathBuf,
    bytes: Vec<u8>,
}

/// Shared state between the pool and its compactor thread.
struct CompactorState {
    /// Folds enqueued but not yet finished; guarded by `pending`'s lock,
    /// signalled through `done`.
    pending: Mutex<usize>,
    done: Condvar,
    /// Failed folds, drained by [`SessionPool::flush_compactions`].
    errors: Mutex<Vec<(usize, JournalError)>>,
    /// Test-only stall (milliseconds) between staging and finishing, so
    /// regression tests can prove updates flow mid-fold.
    stall_ms: AtomicU64,
}

/// The lazily-spawned background compactor: one thread per pool, fed
/// over an mpsc channel, joined on pool drop.
struct Compactor {
    tx: mpsc::Sender<CompactionJob>,
    handle: Option<std::thread::JoinHandle<()>>,
    state: Arc<CompactorState>,
}

impl Compactor {
    fn spawn() -> Compactor {
        let (tx, rx) = mpsc::channel::<CompactionJob>();
        let state = Arc::new(CompactorState {
            pending: Mutex::new(0),
            done: Condvar::new(),
            errors: Mutex::new(Vec::new()),
            stall_ms: AtomicU64::new(0),
        });
        let worker_state = Arc::clone(&state);
        // srclint: allow(raw_spawn, reason = "single long-lived service thread owned by the pool, joined in Drop; run_ordered is for bounded fan-out, not a resident consumer loop")
        let handle = std::thread::spawn(move || {
            while let Ok(job) = rx.recv() {
                let result = run_compaction(&job, &worker_state);
                if let Err(e) = result {
                    worker_state
                        .errors
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .push((job.index, e));
                }
                let mut pending = worker_state
                    .pending
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                *pending = pending.saturating_sub(1);
                drop(pending);
                worker_state.done.notify_all();
            }
        });
        Compactor {
            tx,
            handle: Some(handle),
            state,
        }
    }
}

/// The compactor thread's half of one fold: stage off-lock, optionally
/// stall (tests), then finish under the slot lock. A slot that was
/// vacated or re-journaled in the meantime discards the staged base — the
/// old pair is still durable.
fn run_compaction(job: &CompactionJob, state: &CompactorState) -> Result<(), JournalError> {
    let staged = Journal::stage_compacted_base(&job.base_path, &job.bytes);
    let stall = state.stall_ms.load(Ordering::Relaxed);
    if stall > 0 {
        std::thread::sleep(std::time::Duration::from_millis(stall));
    }
    let mut guard = job.slot.lock().unwrap_or_else(PoisonError::into_inner);
    let journal = guard
        .as_mut()
        .and_then(|s| s.journal.as_mut())
        .filter(|j| j.compaction_pending() && j.base_path() == job.base_path);
    match (staged, journal) {
        (Ok(staged), Some(j)) => j.finish_compact(staged),
        (Ok(staged), None) => {
            staged.discard();
            Ok(())
        }
        (Err(e), journal) => {
            // Staging failed: drop the intent so the policy can retry at
            // the next durability point.
            if let Some(j) = journal {
                j.abort_compact();
            }
            Err(e)
        }
    }
}

/// A bounded shard manager over many [`AlignmentSession`]s; see the
/// [module docs](self).
pub struct SessionPool {
    slots: Vec<Arc<Mutex<Option<Slot>>>>,
    workers: usize,
    compaction: CompactionPolicy,
    compactor: Mutex<Option<Compactor>>,
}

impl Drop for SessionPool {
    fn drop(&mut self) {
        let compactor = self
            .compactor
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
        if let Some(mut c) = compactor {
            drop(c.tx); // closes the channel; the thread drains and exits
            if let Some(handle) = c.handle.take() {
                handle.join().ok();
            }
        }
    }
}

impl fmt::Debug for SessionPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SessionPool")
            .field("sessions", &self.slots.len())
            .field("workers", &self.workers)
            .finish()
    }
}

impl SessionPool {
    /// A pool that fans batch operations out over at most `workers`
    /// threads (`0` = one per available hardware thread). Session
    /// *states* are bit-identical at any worker budget; so are per-job
    /// results, except when two jobs in one batch target the same
    /// session with overlapping edge sets — the final state still
    /// converges, but which job gets credited with the shared merge
    /// follows lock order (see [`SessionPool::update_many`]).
    pub fn new(workers: usize) -> Self {
        let workers = if workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            workers
        };
        SessionPool {
            slots: Vec::new(),
            workers,
            compaction: CompactionPolicy::Never,
            compactor: Mutex::new(None),
        }
    }

    /// The effective worker budget.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Sets when [`SessionPool::save`] folds a slot's journal back into
    /// its base snapshot (default: [`CompactionPolicy::Never`]).
    pub fn set_compaction(&mut self, policy: CompactionPolicy) {
        self.compaction = policy;
    }

    /// The pool's current compaction policy.
    pub fn compaction(&self) -> CompactionPolicy {
        self.compaction
    }

    /// Number of sessions (including vacated slots).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when the pool holds no sessions.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    fn push(&mut self, slot: Slot) -> SessionId {
        self.slots.push(Arc::new(Mutex::new(Some(slot))));
        SessionId(self.slots.len() - 1)
    }

    /// Adds a live [`Counted`] session (no journal; attach one with
    /// [`SessionPool::attach_journal`] to get write-ahead persistence).
    pub fn insert(&mut self, session: AlignmentSession<Counted>) -> SessionId {
        self.push(Slot::live(Staged::Counted(session)))
    }

    /// Adds a live [`Featurized`] session.
    pub fn insert_featurized(&mut self, session: AlignmentSession<Featurized>) -> SessionId {
        self.push(Slot::live(Staged::Featurized(session)))
    }

    /// Opens the base snapshot at `path` into a new slot, replaying its
    /// ΔA journal (if any) through the delta path; the slot keeps the
    /// journal attached, so later updates are write-ahead journaled.
    ///
    /// # Errors
    /// [`PoolError::Journal`] when the base or journal cannot be
    /// restored; the pool is unchanged in that case.
    pub fn open(&mut self, path: impl AsRef<Path>) -> Result<SessionId, PoolError> {
        let (session, journal) = Journal::open(path)?;
        Ok(self.push(Slot {
            staged: Staged::Counted(session),
            journal: Some(journal),
        }))
    }

    /// Opens many base+journal pairs, sharding the decode/replay work
    /// across the worker budget, and returns one result per path **in
    /// path order**. Successfully opened sessions are inserted in path
    /// order too, so ids are deterministic; failed paths consume no slot
    /// and report [`PoolError::OpenSnapshot`] naming the offending file.
    pub fn open_many<P: AsRef<Path> + Sync>(
        &mut self,
        paths: &[P],
    ) -> Vec<Result<SessionId, PoolError>> {
        let mut opened: Vec<Result<(AlignmentSession<Counted>, Journal), JournalError>> =
            Vec::with_capacity(paths.len());
        run_ordered(
            paths.len(),
            self.workers,
            |i| Journal::open(paths[i].as_ref()),
            |r| opened.push(r),
        );
        opened
            .into_iter()
            .zip(paths)
            .map(|(r, path)| match r {
                Ok((session, journal)) => Ok(self.push(Slot {
                    staged: Staged::Counted(session),
                    journal: Some(journal),
                })),
                Err(source) => Err(PoolError::OpenSnapshot {
                    path: path.as_ref().to_path_buf(),
                    source,
                }),
            })
            .collect()
    }

    /// Journals a live-inserted slot: writes its counted core as the base
    /// snapshot at `path`, starts a fresh journal beside it, and attaches
    /// the journal to the slot — from here on updates are write-ahead
    /// appended. Re-attaching (same slot, any path) replaces the old
    /// journal handle; the old files stay valid on disk.
    ///
    /// # Errors
    /// Slot errors as elsewhere; [`PoolError::Journal`] when either write
    /// fails (the slot then keeps its previous journal state).
    pub fn attach_journal(&self, id: SessionId, path: impl AsRef<Path>) -> Result<(), PoolError> {
        let mut guard = self.slot(id)?;
        let slot = guard.as_mut().ok_or(PoolError::Vacated(id.0))?;
        let journal = Journal::create(path, &slot.staged.core_bytes())?;
        slot.journal = Some(journal);
        Ok(())
    }

    fn slot(&self, id: SessionId) -> Result<MutexGuard<'_, Option<Slot>>, PoolError> {
        let m = self
            .slots
            .get(id.0)
            .ok_or(PoolError::UnknownSession(id.0))?;
        match m.lock() {
            Ok(guard) => Ok(guard),
            // A poisoned slot means a panic unwound mid-operation — the
            // session may be torn (counts updated, margins not). Serving
            // it would silently return wrong results, so the slot is
            // vacated: the session is dropped, the poison cleared, and
            // every later access gets the typed Vacated error.
            Err(poisoned) => {
                let mut guard = poisoned.into_inner();
                *guard = None;
                m.clear_poison();
                Err(PoolError::Vacated(id.0))
            }
        }
    }

    /// Applies newly confirmed anchors to one session, on whichever stage
    /// it is in (a `Featurized` slot also refreshes its downstream
    /// artifacts, exactly like
    /// [`AlignmentSession::update_anchors`]). Returns the number of
    /// genuinely new anchors merged.
    ///
    /// On a journaled slot this is **write-ahead**: the batch is
    /// pre-validated, appended to the journal, and only then applied in
    /// memory — all under the slot lock (see the module docs for the
    /// ordering contract).
    ///
    /// # Errors
    /// [`PoolError::UnknownSession`] / [`PoolError::Vacated`] for bad
    /// slots; [`PoolError::Session`] when the batch is invalid
    /// (out-of-range endpoints — neither journal nor session changes);
    /// [`PoolError::Journal`] when the append fails (the session is
    /// unchanged).
    pub fn update_anchors(&self, id: SessionId, edges: &[AnchorEdge]) -> Result<usize, PoolError> {
        let mut guard = self.slot(id)?;
        let slot = guard.as_mut().ok_or(PoolError::Vacated(id.0))?;
        if let Some(j) = slot.journal.as_mut() {
            journal::validate_edges(slot.staged.anchor_shape(), edges)
                .map_err(PoolError::Session)?;
            j.append(edges)?;
        }
        match &mut slot.staged {
            Staged::Counted(s) => Ok(s.update_anchors(edges)?),
            Staged::Featurized(s) => Ok(s.update_anchors(edges)?),
        }
    }

    /// Applies a batch of per-session updates, sharded across the worker
    /// budget; results come back **in job order**. Jobs naming the same
    /// session serialize on its slot lock (each worker holds at most one
    /// lock at a time, so no deadlock is possible); jobs naming distinct
    /// sessions run concurrently.
    ///
    /// Final session states are bit-identical at any worker budget. The
    /// per-job *returned counts* are too, except when two jobs in the
    /// batch carry overlapping edges for the same session: the job that
    /// wins the slot lock merges the shared edge and the other sees it
    /// as already known, so the attribution (not the outcome) follows
    /// lock order.
    pub fn update_many(
        &self,
        jobs: &[(SessionId, Vec<AnchorEdge>)],
    ) -> Vec<Result<usize, PoolError>> {
        let mut results = Vec::with_capacity(jobs.len());
        run_ordered(
            jobs.len(),
            self.workers,
            |i| {
                let (id, edges) = &jobs[i];
                self.update_anchors(*id, edges)
            },
            |r| results.push(r),
        );
        results
    }

    /// Advances a [`Counted`] slot to [`Featurized`] in place.
    ///
    /// # Errors
    /// [`PoolError::WrongStage`] when the slot is already featurized
    /// (featurization is a one-way stage transition; re-featurizing with
    /// different candidates means opening a fresh slot from the same
    /// snapshot).
    pub fn featurize(
        &self,
        id: SessionId,
        candidates: Vec<(UserId, UserId)>,
    ) -> Result<(), PoolError> {
        let mut guard = self.slot(id)?;
        let Slot { staged, journal } = guard.take().ok_or(PoolError::Vacated(id.0))?;
        match staged {
            Staged::Counted(s) => {
                *guard = Some(Slot {
                    staged: Staged::Featurized(s.featurize(candidates)),
                    journal,
                });
                Ok(())
            }
            other => {
                *guard = Some(Slot {
                    staged: other,
                    journal,
                });
                Err(PoolError::WrongStage {
                    id: id.0,
                    expected: "Counted",
                })
            }
        }
    }

    /// Checkpoints a session back to disk — valid from either stage
    /// (features and fits are derived artifacts a reopening process
    /// re-derives; the counted core is what is expensive).
    ///
    /// When the slot's journal is based at exactly `path`, this is the
    /// cheap path: an fsynced `Checkpoint` record — O(|ΔA|) — and, when
    /// the pool's [`CompactionPolicy`] says the journal has grown enough,
    /// a **background** fold (see the module docs — the slot lock is
    /// released before the O(session) staging I/O runs; await it with
    /// [`SessionPool::flush_compactions`]). Otherwise (no journal, or a
    /// foreign path) the whole counted core is written monolithically,
    /// unlinking any stale sibling journal.
    ///
    /// # Errors
    /// Slot errors as elsewhere; [`PoolError::Journal`] /
    /// [`PoolError::Snapshot`] when a write fails.
    pub fn save(&self, id: SessionId, path: impl AsRef<Path>) -> Result<(), PoolError> {
        let arc = Arc::clone(
            self.slots
                .get(id.0)
                .ok_or(PoolError::UnknownSession(id.0))?,
        );
        let mut guard = self.slot(id)?;
        let slot = guard.as_mut().ok_or(PoolError::Vacated(id.0))?;
        if slot
            .journal
            .as_ref()
            .is_some_and(|j| j.base_path() == path.as_ref())
        {
            // The lock is held across the checkpoint append on purpose:
            // it must be ordered against this slot's write-ahead appends.
            let n = slot.staged.n_anchors();
            if let Some(j) = slot.journal.as_mut() {
                j.checkpoint(n)?;
            }
            self.enqueue_if_due(id, slot, &arc)?;
            return Ok(());
        }
        let bytes = slot.staged.core_bytes();
        drop(guard); // the monolithic write needs no lock
        Ok(journal::checkpoint_monolithic(path.as_ref(), &bytes)?)
    }

    /// Checkpoints many sessions, sharding the I/O across the worker
    /// budget, and returns one result per job **in job order** — a slot
    /// that errors (vacated, write failure) reports its own failure
    /// without aborting the rest of the batch, mirroring
    /// [`SessionPool::open_many`].
    pub fn save_many<P: AsRef<Path> + Sync>(
        &self,
        jobs: &[(SessionId, P)],
    ) -> Vec<Result<(), PoolError>> {
        let mut results = Vec::with_capacity(jobs.len());
        run_ordered(
            jobs.len(),
            self.workers,
            |i| {
                let (id, path) = &jobs[i];
                self.save(*id, path.as_ref())
            },
            |r| results.push(r),
        );
        results
    }

    /// Appends an fsynced `Checkpoint` record to a journaled slot — the
    /// durability point of the write-ahead scheme — and enqueues a
    /// background fold when the pool's [`CompactionPolicy`] is due
    /// (exactly like [`SessionPool::save`]'s journaled path).
    ///
    /// # Errors
    /// [`PoolError::Unjournaled`] when the slot has no journal; slot and
    /// journal errors as elsewhere.
    pub fn checkpoint(&self, id: SessionId) -> Result<(), PoolError> {
        let arc = Arc::clone(
            self.slots
                .get(id.0)
                .ok_or(PoolError::UnknownSession(id.0))?,
        );
        let mut guard = self.slot(id)?;
        let slot = guard.as_mut().ok_or(PoolError::Vacated(id.0))?;
        let n = slot.staged.n_anchors();
        let j = slot.journal.as_mut().ok_or(PoolError::Unjournaled(id.0))?;
        j.checkpoint(n)?;
        self.enqueue_if_due(id, slot, &arc)?;
        Ok(())
    }

    /// Evaluates the pool's [`CompactionPolicy`] against one journaled
    /// slot and enqueues a background fold when due. Returns whether a
    /// fold was enqueued. The serving tier calls this after update
    /// batches so journals are bounded even when nobody calls
    /// [`SessionPool::save`].
    ///
    /// # Errors
    /// [`PoolError::Unjournaled`] when the slot has no journal; slot and
    /// journal errors as elsewhere.
    pub fn maybe_compact(&self, id: SessionId) -> Result<bool, PoolError> {
        let arc = Arc::clone(
            self.slots
                .get(id.0)
                .ok_or(PoolError::UnknownSession(id.0))?,
        );
        let mut guard = self.slot(id)?;
        let slot = guard.as_mut().ok_or(PoolError::Vacated(id.0))?;
        if slot.journal.is_none() {
            return Err(PoolError::Unjournaled(id.0));
        }
        self.enqueue_if_due(id, slot, &arc)
    }

    /// Under the slot lock: if the policy says the journal is due, run
    /// [`Journal::begin_compact`] (the O(1) durable marker) and hand the
    /// O(session) staging to the compactor thread.
    fn enqueue_if_due(
        &self,
        id: SessionId,
        slot: &mut Slot,
        arc: &Arc<Mutex<Option<Slot>>>,
    ) -> Result<bool, PoolError> {
        let due = slot
            .journal
            .as_ref()
            .is_some_and(|j| j.should_compact(self.compaction));
        if !due {
            return Ok(false);
        }
        let bytes = slot.staged.core_bytes();
        let Some(j) = slot.journal.as_mut() else {
            return Ok(false);
        };
        j.begin_compact(&bytes)?;
        let job = CompactionJob {
            slot: Arc::clone(arc),
            index: id.0,
            base_path: j.base_path().to_path_buf(),
            bytes,
        };
        let mut compactor = self
            .compactor
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let c = compactor.get_or_insert_with(Compactor::spawn);
        *c.state
            .pending
            .lock()
            .unwrap_or_else(PoisonError::into_inner) += 1;
        if c.tx.send(job).is_err() {
            // The compactor thread is gone (it only exits when the
            // channel closes, so this is a should-not-happen guard):
            // un-arm the fold so the policy can retry, and undo the
            // pending bump.
            j.abort_compact();
            let mut pending = c
                .state
                .pending
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            *pending = pending.saturating_sub(1);
            return Ok(false);
        }
        Ok(true)
    }

    /// Blocks until every enqueued background fold has finished and
    /// returns the failures, one `(slot, error)` pair each — empty means
    /// all folds landed. A failed fold is not fatal: the base+journal
    /// pair is exactly as durable as before the attempt and the policy
    /// re-arms at the next durability point.
    pub fn flush_compactions(&self) -> Vec<(SessionId, JournalError)> {
        let compactor = self
            .compactor
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let Some(c) = compactor.as_ref() else {
            return Vec::new();
        };
        let state = Arc::clone(&c.state);
        drop(compactor); // don't hold the spawn lock while waiting
        let mut pending = state.pending.lock().unwrap_or_else(PoisonError::into_inner);
        while *pending > 0 {
            pending = state
                .done
                .wait(pending)
                .unwrap_or_else(PoisonError::into_inner);
        }
        drop(pending);
        let mut errors = state.errors.lock().unwrap_or_else(PoisonError::into_inner);
        errors.drain(..).map(|(i, e)| (SessionId(i), e)).collect()
    }

    /// Number of background folds enqueued but not yet finished.
    pub fn compaction_backlog(&self) -> usize {
        let compactor = self
            .compactor
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        compactor
            .as_ref()
            .map(|c| {
                *c.state
                    .pending
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
            })
            .unwrap_or(0)
    }

    /// Test hook: stalls the compactor for `ms` milliseconds between
    /// staging and finishing each fold, so tests can prove updates flow
    /// while a fold is in flight. Not part of the serving API.
    #[doc(hidden)]
    pub fn set_compaction_test_stall(&self, ms: u64) {
        let mut compactor = self
            .compactor
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let c = compactor.get_or_insert_with(Compactor::spawn);
        c.state.stall_ms.store(ms, Ordering::Relaxed);
    }

    /// The journal state of a slot, as
    /// `(base_len, journal_bytes, delta_records)`, or `None` for an
    /// unjournaled slot — lets a serving frontend watch journal growth
    /// without touching the policy machinery (and feeds the sharded
    /// tier's manifest v2 shard table).
    ///
    /// # Errors
    /// Slot errors as elsewhere.
    pub fn journal_stats(&self, id: SessionId) -> Result<Option<(u64, u64, u32)>, PoolError> {
        let guard = self.slot(id)?;
        let slot = guard.as_ref().ok_or(PoolError::Vacated(id.0))?;
        Ok(slot
            .journal
            .as_ref()
            .map(|j| (j.base_len(), j.journal_bytes(), j.delta_records())))
    }

    /// The base snapshot path a slot's journal extends, or `None` for an
    /// unjournaled slot.
    ///
    /// # Errors
    /// Slot errors as elsewhere.
    pub fn journal_base(&self, id: SessionId) -> Result<Option<std::path::PathBuf>, PoolError> {
        let guard = self.slot(id)?;
        let slot = guard.as_ref().ok_or(PoolError::Vacated(id.0))?;
        Ok(slot.journal.as_ref().map(|j| j.base_path().to_path_buf()))
    }

    /// True when the slot has been featurized.
    ///
    /// # Errors
    /// Slot errors as elsewhere.
    pub fn is_featurized(&self, id: SessionId) -> Result<bool, PoolError> {
        let guard = self.slot(id)?;
        match &guard.as_ref().ok_or(PoolError::Vacated(id.0))?.staged {
            Staged::Counted(_) => Ok(false),
            Staged::Featurized(_) => Ok(true),
        }
    }

    /// Current anchor count of one session.
    ///
    /// # Errors
    /// Slot errors as elsewhere.
    pub fn n_anchors(&self, id: SessionId) -> Result<usize, PoolError> {
        let guard = self.slot(id)?;
        Ok(guard
            .as_ref()
            .ok_or(PoolError::Vacated(id.0))?
            .staged
            .n_anchors())
    }

    /// Work counters of one session ([`AlignmentSession::stats`]).
    ///
    /// # Errors
    /// Slot errors as elsewhere.
    pub fn stats(&self, id: SessionId) -> Result<DeltaStats, PoolError> {
        let guard = self.slot(id)?;
        match &guard.as_ref().ok_or(PoolError::Vacated(id.0))?.staged {
            Staged::Counted(s) => Ok(s.stats()),
            Staged::Featurized(s) => Ok(s.stats()),
        }
    }

    /// Runs `f` against a [`Counted`] slot under its lock.
    ///
    /// # Errors
    /// [`PoolError::WrongStage`] when the slot is featurized; slot errors
    /// as elsewhere.
    pub fn with_counted<R>(
        &self,
        id: SessionId,
        f: impl FnOnce(&AlignmentSession<Counted>) -> R,
    ) -> Result<R, PoolError> {
        let guard = self.slot(id)?;
        match &guard.as_ref().ok_or(PoolError::Vacated(id.0))?.staged {
            Staged::Counted(s) => Ok(f(s)),
            Staged::Featurized(_) => Err(PoolError::WrongStage {
                id: id.0,
                expected: "Counted",
            }),
        }
    }

    /// Runs `f` against a [`Featurized`] slot under its lock (read
    /// features, score candidates, build instances).
    ///
    /// # Errors
    /// [`PoolError::WrongStage`] when the slot is still counted; slot
    /// errors as elsewhere.
    pub fn with_featurized<R>(
        &self,
        id: SessionId,
        f: impl FnOnce(&AlignmentSession<Featurized>) -> R,
    ) -> Result<R, PoolError> {
        let guard = self.slot(id)?;
        match &guard.as_ref().ok_or(PoolError::Vacated(id.0))?.staged {
            Staged::Featurized(s) => Ok(f(s)),
            Staged::Counted(_) => Err(PoolError::WrongStage {
                id: id.0,
                expected: "Featurized",
            }),
        }
    }
}
