//! Many concurrent sessions over one process: the snapshot-serving pool.
//!
//! The active-alignment serving story (ROADMAP "Session checkpointing /
//! serving") needs more than one query stream per process: each client —
//! a fold rotation, a network pair, a tenant — owns an
//! [`AlignmentSession`] with its own staged state, while the process
//! bounds how many of them make progress at once. [`SessionPool`] is that
//! shard manager:
//!
//! * sessions enter the pool either live ([`SessionPool::insert`]) or by
//!   **opening a snapshot** ([`SessionPool::open`] /
//!   [`SessionPool::open_many`], the latter sharding the decode work
//!   across the worker budget) — at paper scale, opening is the
//!   difference between milliseconds and a full catalog recount per
//!   session (the `snapshot` bench bin measures it);
//! * each slot tracks its session's **staged state** (`Counted` or
//!   `Featurized`) behind its own lock, so independent sessions never
//!   contend and a batch touching one session many times serializes
//!   correctly;
//! * batch operations ([`SessionPool::update_many`]) fan out over the
//!   bounded, panic-safe, order-preserving worker runner
//!   ([`crate::workers::run_ordered`]) — the same pattern
//!   `eval::multi` shards pairwise evaluation with — returning results
//!   in job order.
//!
//! Fitted stages stay out of the pool by design: a fit is a terminal,
//! read-only artifact ([`AlignmentSession::into_report`]); serving keeps
//! slots at the stage where anchor feedback can still be folded in.
//!
//! ## Example
//!
//! ```
//! use session::pool::SessionPool;
//! use session::SessionBuilder;
//!
//! let world = datagen::generate(&datagen::presets::tiny(13));
//! let counted = SessionBuilder::new(world.left(), world.right())
//!     .anchors(world.truth().links()[..6].to_vec())
//!     .count()
//!     .unwrap();
//!
//! let mut pool = SessionPool::new(2);
//! let a = pool.insert(counted.clone());
//! let b = pool.insert(counted);
//! let extra = world.truth().links()[6..10].to_vec();
//! let results = pool.update_many(&[(a, extra.clone()), (b, extra)]);
//! assert_eq!(results.len(), 2);
//! assert_eq!(*results[0].as_ref().unwrap(), 4);
//! assert_eq!(pool.stats(b).unwrap().full_counts, 1); // still no recount
//! ```

use crate::snapshot::{self, SnapshotError};
use crate::stages::{AlignmentSession, Counted, Featurized};
use crate::workers::run_ordered;
use crate::{AnchorEdge, SessionError};
use hetnet::UserId;
use metadiagram::DeltaStats;
use std::fmt;
use std::path::Path;
use std::sync::{Mutex, MutexGuard};

/// Opaque handle to a pooled session. Ids are dense indices in insertion
/// order and are never reused within a pool's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(usize);

impl SessionId {
    /// The slot index (stable for the pool's lifetime).
    pub fn index(self) -> usize {
        self.0
    }

    /// Rehydrates an id from a slot index — for routing tables that
    /// persist ids outside the pool (a serving frontend mapping tenants
    /// to slots). Ids are only meaningful to the pool that issued them;
    /// an index the pool never issued surfaces as
    /// [`PoolError::UnknownSession`] on first use.
    pub fn from_index(index: usize) -> Self {
        SessionId(index)
    }
}

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "session#{}", self.0)
    }
}

/// Everything a pool operation can fail with.
#[derive(Debug)]
pub enum PoolError {
    /// The id does not name a slot of this pool.
    UnknownSession(usize),
    /// The slot exists but its session is gone — a panic unwound through
    /// a stage transition and vacated it. The pool stays usable; only
    /// this slot is lost.
    Vacated(usize),
    /// The operation needs the other stage (e.g. featurizing an
    /// already-featurized session).
    WrongStage {
        /// The offending slot.
        id: usize,
        /// The stage the operation required.
        expected: &'static str,
    },
    /// Opening or saving a snapshot failed.
    Snapshot(SnapshotError),
    /// Opening a specific snapshot file failed — carries the offending
    /// path so a batch open ([`SessionPool::open_many`]) over dozens of
    /// shard files names which one refused, not just how.
    OpenSnapshot {
        /// The snapshot file that failed to open.
        path: std::path::PathBuf,
        /// Why it failed.
        source: SnapshotError,
    },
    /// The underlying session operation failed.
    Session(SessionError),
}

impl fmt::Display for PoolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoolError::UnknownSession(id) => write!(f, "no session #{id} in this pool"),
            PoolError::Vacated(id) => {
                write!(
                    f,
                    "session #{id} was vacated by a panicked stage transition"
                )
            }
            PoolError::WrongStage { id, expected } => {
                write!(f, "session #{id} is not in the {expected} stage")
            }
            PoolError::Snapshot(e) => write!(f, "pool snapshot: {e}"),
            PoolError::OpenSnapshot { path, source } => {
                write!(f, "pool snapshot {}: {source}", path.display())
            }
            PoolError::Session(e) => write!(f, "pool session: {e}"),
        }
    }
}

impl std::error::Error for PoolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PoolError::Snapshot(e) => Some(e),
            PoolError::OpenSnapshot { source, .. } => Some(source),
            PoolError::Session(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SnapshotError> for PoolError {
    fn from(e: SnapshotError) -> Self {
        PoolError::Snapshot(e)
    }
}

impl From<SessionError> for PoolError {
    fn from(e: SessionError) -> Self {
        PoolError::Session(e)
    }
}

/// A slot's staged state.
enum Staged {
    Counted(AlignmentSession<Counted>),
    Featurized(AlignmentSession<Featurized>),
}

/// A bounded shard manager over many [`AlignmentSession`]s; see the
/// [module docs](self).
pub struct SessionPool {
    slots: Vec<Mutex<Option<Staged>>>,
    workers: usize,
}

impl fmt::Debug for SessionPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SessionPool")
            .field("sessions", &self.slots.len())
            .field("workers", &self.workers)
            .finish()
    }
}

impl SessionPool {
    /// A pool that fans batch operations out over at most `workers`
    /// threads (`0` = one per available hardware thread). Session
    /// *states* are bit-identical at any worker budget; so are per-job
    /// results, except when two jobs in one batch target the same
    /// session with overlapping edge sets — the final state still
    /// converges, but which job gets credited with the shared merge
    /// follows lock order (see [`SessionPool::update_many`]).
    pub fn new(workers: usize) -> Self {
        let workers = if workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            workers
        };
        SessionPool {
            slots: Vec::new(),
            workers,
        }
    }

    /// The effective worker budget.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Number of sessions (including vacated slots).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when the pool holds no sessions.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    fn push(&mut self, staged: Staged) -> SessionId {
        self.slots.push(Mutex::new(Some(staged)));
        SessionId(self.slots.len() - 1)
    }

    /// Adds a live [`Counted`] session.
    pub fn insert(&mut self, session: AlignmentSession<Counted>) -> SessionId {
        self.push(Staged::Counted(session))
    }

    /// Adds a live [`Featurized`] session.
    pub fn insert_featurized(&mut self, session: AlignmentSession<Featurized>) -> SessionId {
        self.push(Staged::Featurized(session))
    }

    /// Opens the snapshot at `path` into a new slot.
    ///
    /// # Errors
    /// [`PoolError::Snapshot`] when the snapshot cannot be restored; the
    /// pool is unchanged in that case.
    pub fn open(&mut self, path: impl AsRef<Path>) -> Result<SessionId, PoolError> {
        let session = snapshot::open(path)?;
        Ok(self.insert(session))
    }

    /// Opens many snapshots, sharding the decode work across the worker
    /// budget, and returns one result per path **in path order**.
    /// Successfully opened sessions are inserted in path order too, so
    /// ids are deterministic; failed paths consume no slot and report
    /// [`PoolError::OpenSnapshot`] naming the offending file.
    pub fn open_many<P: AsRef<Path> + Sync>(
        &mut self,
        paths: &[P],
    ) -> Vec<Result<SessionId, PoolError>> {
        let mut opened: Vec<Result<AlignmentSession<Counted>, SnapshotError>> =
            Vec::with_capacity(paths.len());
        run_ordered(
            paths.len(),
            self.workers,
            |i| snapshot::open(paths[i].as_ref()),
            |r| opened.push(r),
        );
        opened
            .into_iter()
            .zip(paths)
            .map(|(r, path)| match r {
                Ok(session) => Ok(self.insert(session)),
                Err(source) => Err(PoolError::OpenSnapshot {
                    path: path.as_ref().to_path_buf(),
                    source,
                }),
            })
            .collect()
    }

    fn slot(&self, id: SessionId) -> Result<MutexGuard<'_, Option<Staged>>, PoolError> {
        let m = self
            .slots
            .get(id.0)
            .ok_or(PoolError::UnknownSession(id.0))?;
        match m.lock() {
            Ok(guard) => Ok(guard),
            // A poisoned slot means a panic unwound mid-operation — the
            // session may be torn (counts updated, margins not). Serving
            // it would silently return wrong results, so the slot is
            // vacated: the session is dropped, the poison cleared, and
            // every later access gets the typed Vacated error.
            Err(poisoned) => {
                let mut guard = poisoned.into_inner();
                *guard = None;
                m.clear_poison();
                Err(PoolError::Vacated(id.0))
            }
        }
    }

    /// Applies newly confirmed anchors to one session, on whichever stage
    /// it is in (a `Featurized` slot also refreshes its downstream
    /// artifacts, exactly like
    /// [`AlignmentSession::update_anchors`]). Returns the number of
    /// genuinely new anchors merged.
    ///
    /// # Errors
    /// [`PoolError::UnknownSession`] / [`PoolError::Vacated`] for bad
    /// slots; [`PoolError::Session`] when the update itself fails
    /// (out-of-range endpoints — the session is unchanged).
    pub fn update_anchors(&self, id: SessionId, edges: &[AnchorEdge]) -> Result<usize, PoolError> {
        let mut guard = self.slot(id)?;
        match guard.as_mut().ok_or(PoolError::Vacated(id.0))? {
            Staged::Counted(s) => Ok(s.update_anchors(edges)?),
            Staged::Featurized(s) => Ok(s.update_anchors(edges)?),
        }
    }

    /// Applies a batch of per-session updates, sharded across the worker
    /// budget; results come back **in job order**. Jobs naming the same
    /// session serialize on its slot lock (each worker holds at most one
    /// lock at a time, so no deadlock is possible); jobs naming distinct
    /// sessions run concurrently.
    ///
    /// Final session states are bit-identical at any worker budget. The
    /// per-job *returned counts* are too, except when two jobs in the
    /// batch carry overlapping edges for the same session: the job that
    /// wins the slot lock merges the shared edge and the other sees it
    /// as already known, so the attribution (not the outcome) follows
    /// lock order.
    pub fn update_many(
        &self,
        jobs: &[(SessionId, Vec<AnchorEdge>)],
    ) -> Vec<Result<usize, PoolError>> {
        let mut results = Vec::with_capacity(jobs.len());
        run_ordered(
            jobs.len(),
            self.workers,
            |i| {
                let (id, edges) = &jobs[i];
                self.update_anchors(*id, edges)
            },
            |r| results.push(r),
        );
        results
    }

    /// Advances a [`Counted`] slot to [`Featurized`] in place.
    ///
    /// # Errors
    /// [`PoolError::WrongStage`] when the slot is already featurized
    /// (featurization is a one-way stage transition; re-featurizing with
    /// different candidates means opening a fresh slot from the same
    /// snapshot).
    pub fn featurize(
        &self,
        id: SessionId,
        candidates: Vec<(UserId, UserId)>,
    ) -> Result<(), PoolError> {
        let mut guard = self.slot(id)?;
        match guard.take().ok_or(PoolError::Vacated(id.0))? {
            Staged::Counted(s) => {
                *guard = Some(Staged::Featurized(s.featurize(candidates)));
                Ok(())
            }
            other => {
                *guard = Some(other);
                Err(PoolError::WrongStage {
                    id: id.0,
                    expected: "Counted",
                })
            }
        }
    }

    /// Checkpoints a session's counted core back to disk — valid from
    /// either stage (features and fits are derived artifacts a reopening
    /// process re-derives; the counted core is what is expensive).
    ///
    /// # Errors
    /// Slot errors as elsewhere; [`PoolError::Snapshot`] when the write
    /// fails.
    pub fn save(&self, id: SessionId, path: impl AsRef<Path>) -> Result<(), PoolError> {
        let guard = self.slot(id)?;
        let bytes = match guard.as_ref().ok_or(PoolError::Vacated(id.0))? {
            Staged::Counted(s) => snapshot::to_bytes(s),
            Staged::Featurized(s) => snapshot::counted_core_to_bytes(&s.catalog, &s.counts),
        };
        drop(guard); // the write needs no lock; don't hold it across I/O
        Ok(snapshot::write_atomic(path.as_ref(), &bytes)?)
    }

    /// True when the slot has been featurized.
    ///
    /// # Errors
    /// Slot errors as elsewhere.
    pub fn is_featurized(&self, id: SessionId) -> Result<bool, PoolError> {
        let guard = self.slot(id)?;
        match guard.as_ref().ok_or(PoolError::Vacated(id.0))? {
            Staged::Counted(_) => Ok(false),
            Staged::Featurized(_) => Ok(true),
        }
    }

    /// Current anchor count of one session.
    ///
    /// # Errors
    /// Slot errors as elsewhere.
    pub fn n_anchors(&self, id: SessionId) -> Result<usize, PoolError> {
        let guard = self.slot(id)?;
        match guard.as_ref().ok_or(PoolError::Vacated(id.0))? {
            Staged::Counted(s) => Ok(s.n_anchors()),
            Staged::Featurized(s) => Ok(s.n_anchors()),
        }
    }

    /// Work counters of one session ([`AlignmentSession::stats`]).
    ///
    /// # Errors
    /// Slot errors as elsewhere.
    pub fn stats(&self, id: SessionId) -> Result<DeltaStats, PoolError> {
        let guard = self.slot(id)?;
        match guard.as_ref().ok_or(PoolError::Vacated(id.0))? {
            Staged::Counted(s) => Ok(s.stats()),
            Staged::Featurized(s) => Ok(s.stats()),
        }
    }

    /// Runs `f` against a [`Counted`] slot under its lock.
    ///
    /// # Errors
    /// [`PoolError::WrongStage`] when the slot is featurized; slot errors
    /// as elsewhere.
    pub fn with_counted<R>(
        &self,
        id: SessionId,
        f: impl FnOnce(&AlignmentSession<Counted>) -> R,
    ) -> Result<R, PoolError> {
        let guard = self.slot(id)?;
        match guard.as_ref().ok_or(PoolError::Vacated(id.0))? {
            Staged::Counted(s) => Ok(f(s)),
            Staged::Featurized(_) => Err(PoolError::WrongStage {
                id: id.0,
                expected: "Counted",
            }),
        }
    }

    /// Runs `f` against a [`Featurized`] slot under its lock (read
    /// features, score candidates, build instances).
    ///
    /// # Errors
    /// [`PoolError::WrongStage`] when the slot is still counted; slot
    /// errors as elsewhere.
    pub fn with_featurized<R>(
        &self,
        id: SessionId,
        f: impl FnOnce(&AlignmentSession<Featurized>) -> R,
    ) -> Result<R, PoolError> {
        let guard = self.slot(id)?;
        match guard.as_ref().ok_or(PoolError::Vacated(id.0))? {
            Staged::Featurized(s) => Ok(f(s)),
            Staged::Counted(_) => Err(PoolError::WrongStage {
                id: id.0,
                expected: "Featurized",
            }),
        }
    }
}
