//! Bounded, panic-safe, order-preserving fan-out — the one worker-pool
//! pattern the workspace shards independent jobs with.
//!
//! Both multi-network evaluation (`eval::multi::for_each_pair_alignment`)
//! and the snapshot-serving [`SessionPool`](crate::pool::SessionPool)
//! face the same shape of problem: `n` independent jobs, a bounded worker
//! budget, and a consumer that wants results **in job order** without
//! buffering more than O(workers) of them when one job straggles. This
//! module is that pattern extracted once:
//!
//! * workers claim job indices from a shared atomic counter — no
//!   pre-partitioning, so stragglers don't idle their siblings;
//! * a [`ClaimWindow`] counting semaphore caps claimed-but-unemitted jobs
//!   at `2 × workers`, which bounds the consumer's reorder buffer;
//! * every permit is an RAII guard released **on every exit path,
//!   unwinding included** — a panicking worker can never strand blocked
//!   siblings in `acquire` (the consumer would stop releasing, the scope
//!   would block joining, and the panic would be masked by a hang). The
//!   regression test `panicking_worker_propagates_instead_of_hanging`
//!   pins this.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// A counting semaphore bounding how many claimed-but-not-yet-emitted
/// jobs may exist at once — the backpressure that keeps [`run_ordered`]'s
/// reorder buffer at O(workers) even when one job straggles far behind
/// the rest.
pub struct ClaimWindow {
    permits: Mutex<usize>,
    cv: Condvar,
}

impl ClaimWindow {
    /// A window with `permits` slots.
    pub fn new(permits: usize) -> Self {
        ClaimWindow {
            permits: Mutex::new(permits),
            cv: Condvar::new(),
        }
    }

    /// Blocks for a permit. The returned guard releases it on drop —
    /// including during unwinding. Call [`Permit::transfer`] once
    /// responsibility for the release moves to the consumer.
    pub fn acquire(&self) -> Permit<'_> {
        let mut n = self
            .permits
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        while *n == 0 {
            n = self
                .cv
                .wait(n)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        *n -= 1;
        Permit {
            window: self,
            armed: true,
        }
    }

    /// Returns a permit to the window, waking blocked acquirers.
    pub fn release(&self) {
        *self
            .permits
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) += 1;
        self.cv.notify_all();
    }
}

/// RAII claim-window permit (see [`ClaimWindow::acquire`]).
pub struct Permit<'a> {
    window: &'a ClaimWindow,
    armed: bool,
}

impl Permit<'_> {
    /// Hands the release duty to whoever now owns the claimed slot (the
    /// consumer releases after emitting the job's result).
    pub fn transfer(mut self) {
        self.armed = false;
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.window.release();
        }
    }
}

/// What a worker sends the consumer.
enum Msg<T> {
    /// Job `.0` produced `.1`.
    Done(usize, T),
    /// `work` panicked; the payload is relayed so the caller's thread can
    /// re-raise it.
    Panicked(Box<dyn std::any::Any + Send>),
}

/// Runs `work(0..n_items)` across at most `workers` scoped threads and
/// feeds each result to `sink` **in index order**. With `workers <= 1`
/// (or one job) everything runs serially on the caller's thread — results
/// are identical either way, only the wall-clock differs.
///
/// At most `2 × workers` results are in flight at once (claimed by a
/// worker or parked in the reorder buffer); a straggling early job
/// throttles its siblings instead of growing the buffer to O(n).
///
/// # Panics
/// A panic inside `work` propagates to the caller — never a hang. The
/// naive claim-window design deadlocks here: the panicked job's result
/// never arrives, the in-order emit stalls at its index, the consumer
/// stops releasing permits, and the surviving workers block in `acquire`
/// while holding channel senders the consumer is waiting on. Workers
/// therefore catch the panic and relay it as a message; the consumer
/// poisons the window (every subsequent acquire is told to give up),
/// wakes all blocked workers, and re-raises the payload once the scope
/// has joined.
pub fn run_ordered<T, W, S>(n_items: usize, workers: usize, work: W, mut sink: S)
where
    T: Send,
    W: Fn(usize) -> T + Sync,
    S: FnMut(T),
{
    let workers = workers.min(n_items).max(1);
    if workers <= 1 {
        for i in 0..n_items {
            sink(work(i));
        }
        return;
    }
    let next = AtomicUsize::new(0);
    let window = ClaimWindow::new(workers * 2);
    let poisoned = std::sync::atomic::AtomicBool::new(false);
    let (tx, rx) = std::sync::mpsc::channel::<Msg<T>>();
    let mut panic_payload: Option<Box<dyn std::any::Any + Send>> = None;
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let window = &window;
            let poisoned = &poisoned;
            let work = &work;
            scope.spawn(move || loop {
                // One permit per claimed job, held until the consumer
                // emits it. The permit guard releases on every other exit
                // path — jobs exhausted, receiver gone, poison observed —
                // so blocked siblings always wake up.
                let permit = window.acquire();
                if poisoned.load(Ordering::SeqCst) {
                    break;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n_items {
                    break;
                }
                // AssertUnwindSafe: on Err the whole run is abandoned and
                // the payload re-raised, so no state `work` may have left
                // behind is ever observed again.
                let msg = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| work(i))) {
                    Ok(v) => Msg::Done(i, v),
                    Err(p) => Msg::Panicked(p),
                };
                let panicking = matches!(msg, Msg::Panicked(_));
                if tx.send(msg).is_err() || panicking {
                    break;
                }
                permit.transfer();
            });
        }
        drop(tx);
        // Re-emit in job order; each emit returns a permit, so `pending`
        // never holds more than the claim window.
        let mut pending: std::collections::BTreeMap<usize, T> = std::collections::BTreeMap::new();
        let mut next_emit = 0usize;
        for msg in rx {
            match msg {
                Msg::Done(i, result) => {
                    pending.insert(i, result);
                    while let Some(ready) = pending.remove(&next_emit) {
                        sink(ready);
                        next_emit += 1;
                        window.release();
                    }
                }
                Msg::Panicked(p) => {
                    panic_payload = Some(p);
                    poisoned.store(true, Ordering::SeqCst);
                    // Wake every worker that may be blocked in acquire;
                    // each observes the poison and exits.
                    for _ in 0..workers * 2 {
                        window.release();
                    }
                    break;
                }
            }
        }
    });
    if let Some(p) = panic_payload {
        std::panic::resume_unwind(p);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_arrive_in_order_at_any_worker_count() {
        for workers in [0, 1, 2, 3, 8, 64] {
            let mut seen = Vec::new();
            run_ordered(20, workers, |i| i * i, |v| seen.push(v));
            let want: Vec<usize> = (0..20).map(|i| i * i).collect();
            assert_eq!(seen, want, "workers = {workers}");
        }
    }

    #[test]
    fn zero_items_is_a_noop() {
        let mut called = false;
        run_ordered(0, 4, |i| i, |_| called = true);
        assert!(!called);
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let counters: Vec<AtomicUsize> = (0..50).map(|_| AtomicUsize::new(0)).collect();
        run_ordered(
            50,
            4,
            |i| {
                counters[i].fetch_add(1, Ordering::SeqCst);
                i
            },
            |_| {},
        );
        for (i, c) in counters.iter().enumerate() {
            assert_eq!(c.load(Ordering::SeqCst), 1, "job {i}");
        }
    }

    #[test]
    fn straggler_does_not_grow_the_reorder_buffer_past_the_window() {
        // Job 0 finishes last; the claim window must cap how far ahead
        // the other workers can run (2 × workers jobs at most).
        let workers = 3;
        let max_ahead = AtomicUsize::new(0);
        let claimed = AtomicUsize::new(0);
        let emitted = AtomicUsize::new(0);
        run_ordered(
            40,
            workers,
            |i| {
                let in_flight =
                    claimed.fetch_add(1, Ordering::SeqCst) + 1 - emitted.load(Ordering::SeqCst);
                max_ahead.fetch_max(in_flight, Ordering::SeqCst);
                if i == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(30));
                }
                i
            },
            |_| {
                emitted.fetch_add(1, Ordering::SeqCst);
            },
        );
        // `claimed - emitted` can transiently exceed the permit count by
        // the workers that have claimed but not yet recorded; the bound
        // to pin is "window + workers", not "n_items".
        assert!(
            max_ahead.load(Ordering::SeqCst) <= workers * 2 + workers,
            "reorder window exceeded: {} in flight",
            max_ahead.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn panicking_worker_propagates_instead_of_hanging() {
        // The claim-window regression: a worker that panics while holding
        // a permit must release it during unwinding, so its siblings
        // drain the remaining jobs and the scope join re-raises the
        // panic — a deadlock here would hang the test suite, which is the
        // failure mode this pins.
        let result = std::panic::catch_unwind(|| {
            run_ordered(
                30,
                3,
                |i| {
                    if i == 5 {
                        panic!("job 5 exploded");
                    }
                    i
                },
                |_| {},
            );
        });
        assert!(result.is_err(), "worker panic must propagate");
    }
}
