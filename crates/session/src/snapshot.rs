//! Session checkpointing: persist a [`Counted`] stage, reopen it in a
//! fresh process.
//!
//! The expensive part of an alignment session is the one full catalog
//! count the build pays (31 SpGEMM chains at paper scale); everything
//! after that is incremental. [`save`] writes that `Counted` stage — the
//! merged anchor matrix, every count matrix with its maintained margins,
//! and the `L`/`R` factor chains — to a versioned, checksummed snapshot
//! file, and [`open`] restores it **bit-identically**: a reopened session
//! resumes [`AlignmentSession::update_anchors`] and
//! [`AlignmentSession::run_active`](crate::AlignmentSession::run_active)
//! producing exactly the bytes the never-persisted session would, without
//! recounting (`stats().full_counts` stays 1). Property-tested in
//! `tests/snapshot_props.rs`.
//!
//! The on-disk layout (magic, format version, section table, CRC-32 per
//! section) and the compatibility policy are specified in
//! `docs/SNAPSHOT_FORMAT.md`; the payload codecs live with the types they
//! serialize ([`sparsela::codec`], [`metadiagram::codec`]).
//!
//! **Refusal policy.** A snapshot that cannot be restored exactly is not
//! restored at all: wrong magic, a format version this build does not
//! know, a checksum mismatch, a truncated section, or a payload that
//! fails semantic validation each raise a typed [`SnapshotError`]. There
//! is no best-effort mode.
//!
//! ## Example
//!
//! ```
//! use session::{snapshot, SessionBuilder};
//!
//! let world = datagen::generate(&datagen::presets::tiny(11));
//! let counted = SessionBuilder::new(world.left(), world.right())
//!     .anchors(world.truth().links()[..8].to_vec())
//!     .count()
//!     .unwrap();
//! let path = std::env::temp_dir().join("session-doctest.snap");
//! snapshot::save(&counted, &path).unwrap();
//! let reopened = snapshot::open(&path).unwrap();
//! assert_eq!(reopened.n_anchors(), counted.n_anchors());
//! assert_eq!(reopened.stats().full_counts, 1); // no recount on open
//! # std::fs::remove_file(&path).ok();
//! ```

use crate::stages::{AlignmentSession, Counted};
use metadiagram::{codec as mcodec, Catalog};
use serde::bin::{crc32, Error as BinError, Reader, Writer};
use std::fmt;
use std::path::Path;

/// The 8-byte file magic: "MDASNAP" + a NUL (Meta-Diagram Alignment
/// SNAPshot).
pub const MAGIC: [u8; 8] = *b"MDASNAP\0";

/// The snapshot format version this build writes and the only one it
/// reads. Any layout change bumps it; see `docs/SNAPSHOT_FORMAT.md` for
/// the compatibility policy.
pub const FORMAT_VERSION: u32 = 1;

const SECTION_META: [u8; 4] = *b"META";
const SECTION_COUNTS: [u8; 4] = *b"DCNT";

/// Everything that can go wrong saving or opening a snapshot.
#[derive(Debug)]
pub enum SnapshotError {
    /// Reading or writing the file failed.
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`] — not a snapshot at all.
    BadMagic,
    /// The file's format version is not [`FORMAT_VERSION`]. Snapshots are
    /// rebuildable artifacts; the policy is refuse-and-recount, not
    /// migrate (see `docs/SNAPSHOT_FORMAT.md`).
    UnsupportedVersion {
        /// Version found in the file.
        found: u32,
        /// The one version this build supports.
        supported: u32,
    },
    /// A section's payload does not hash to its recorded CRC-32 — the
    /// file was bit-flipped or truncated mid-section.
    Checksum {
        /// The four-character section id (`META`, `DCNT`, or the section
        /// table itself as `TABL`).
        section: String,
    },
    /// A required section is absent from the section table.
    MissingSection {
        /// The four-character section id.
        section: String,
    },
    /// A section's declared offset/length reaches past the end of the
    /// file — truncated after the table was written.
    OutOfBounds {
        /// The four-character section id.
        section: String,
    },
    /// A payload decoded structurally but failed validation (or was
    /// truncated inside a length prefix). Carries the codec's message.
    Decode(BinError),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot io: {e}"),
            SnapshotError::BadMagic => write!(f, "not a session snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion { found, supported } => write!(
                f,
                "snapshot format version {found} is not supported (this build reads \
                 version {supported}); re-count and re-save"
            ),
            SnapshotError::Checksum { section } => {
                write!(f, "snapshot section {section} failed its checksum")
            }
            SnapshotError::MissingSection { section } => {
                write!(f, "snapshot is missing required section {section}")
            }
            SnapshotError::OutOfBounds { section } => {
                write!(
                    f,
                    "snapshot section {section} reaches past the end of the file"
                )
            }
            SnapshotError::Decode(e) => write!(f, "snapshot payload: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            SnapshotError::Decode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

impl From<BinError> for SnapshotError {
    fn from(e: BinError) -> Self {
        SnapshotError::Decode(e)
    }
}

fn section_name(id: [u8; 4]) -> String {
    id.iter().map(|&b| b as char).collect()
}

/// Serializes a [`Counted`] session to snapshot bytes (the exact content
/// [`save`] writes).
pub fn to_bytes(session: &AlignmentSession<Counted>) -> Vec<u8> {
    counted_core_to_bytes(&session.catalog, &session.counts)
}

/// The stage-agnostic encoder: any stage's counted core (catalog + delta
/// store) snapshots identically — features and fits are derived
/// artifacts a reopening process re-derives. The threading knob travels
/// inside the store (single source of truth; the session's own copy is
/// restored from it on open).
pub(crate) fn counted_core_to_bytes(
    catalog: &Catalog,
    store: &metadiagram::DeltaCatalogCounts,
) -> Vec<u8> {
    // META: session-level configuration (currently the feature set).
    let mut meta = Writer::new();
    mcodec::encode_feature_set(catalog.feature_set(), &mut meta);
    // DCNT: the whole delta-count store, threading knob included. The
    // buffer is pre-sized to the exact encoded length so the bulk slice
    // writes never trigger a mid-encode reallocation.
    let mut counts = Writer::with_capacity(mcodec::store_encoded_len(store));
    mcodec::encode_store(store, &mut counts);
    debug_assert_eq!(counts.len(), mcodec::store_encoded_len(store));

    let sections: [([u8; 4], Vec<u8>); 2] = [
        (SECTION_META, meta.into_bytes()),
        (SECTION_COUNTS, counts.into_bytes()),
    ];

    // Header: magic, version, section count, table checksum (filled after
    // the table is laid out).
    let header_len = MAGIC.len() + 4 + 4 + 4;
    let table_entry_len = 4 + 8 + 8 + 4;
    let table_len = sections.len() * table_entry_len;
    let mut table = Writer::with_capacity(table_len);
    let mut offset = header_len + table_len;
    for (id, payload) in &sections {
        table.bytes(id);
        table.u64(offset as u64);
        table.u64(payload.len() as u64);
        table.u32(crc32(payload));
        offset += payload.len();
    }
    let table = table.into_bytes();

    let mut out = Writer::with_capacity(offset);
    out.bytes(&MAGIC);
    out.u32(FORMAT_VERSION);
    out.u32(sections.len() as u32);
    out.u32(crc32(&table));
    out.bytes(&table);
    for (_, payload) in &sections {
        out.bytes(payload);
    }
    out.into_bytes()
}

/// Restores a [`Counted`] session from snapshot bytes.
///
/// # Errors
/// See [`SnapshotError`] — any deviation from the format refuses the
/// whole snapshot.
pub fn from_bytes(bytes: &[u8]) -> Result<AlignmentSession<Counted>, SnapshotError> {
    let mut r = Reader::new(bytes);
    let magic = r.bytes(MAGIC.len()).map_err(|_| SnapshotError::BadMagic)?;
    if magic != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = r.u32()?;
    if version != FORMAT_VERSION {
        return Err(SnapshotError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let n_sections = r.u32()? as usize;
    let table_crc = r.u32()?;
    let table_entry_len = 4 + 8 + 8 + 4;
    let table_bytes = r.bytes(n_sections * table_entry_len)?;
    if crc32(table_bytes) != table_crc {
        return Err(SnapshotError::Checksum {
            section: "TABL".into(),
        });
    }
    let mut table = Reader::new(table_bytes);
    let mut meta_payload: Option<&[u8]> = None;
    let mut counts_payload: Option<&[u8]> = None;
    for _ in 0..n_sections {
        // `bytes(4)` yields exactly 4 bytes on success, but a decode path
        // never panics on principle (`panic_in_lib`): a width mismatch
        // surfaces as a malformed-snapshot error like every other defect.
        let id: [u8; 4] = table.bytes(4)?.try_into().map_err(|_| {
            SnapshotError::Decode(BinError::Malformed("section id is not 4 bytes".into()))
        })?;
        let offset = table.u64()? as usize;
        let len = table.u64()? as usize;
        let crc = table.u32()?;
        let end = offset.checked_add(len).filter(|&e| e <= bytes.len());
        let payload = match end {
            Some(end) => &bytes[offset..end],
            None => {
                return Err(SnapshotError::OutOfBounds {
                    section: section_name(id),
                })
            }
        };
        if crc32(payload) != crc {
            return Err(SnapshotError::Checksum {
                section: section_name(id),
            });
        }
        match id {
            SECTION_META => meta_payload = Some(payload),
            SECTION_COUNTS => counts_payload = Some(payload),
            // Unknown sections are ignored: additive sections may appear
            // within a format version (see docs/SNAPSHOT_FORMAT.md).
            _ => {}
        }
    }
    let meta_payload = meta_payload.ok_or(SnapshotError::MissingSection {
        section: section_name(SECTION_META),
    })?;
    let counts_payload = counts_payload.ok_or(SnapshotError::MissingSection {
        section: section_name(SECTION_COUNTS),
    })?;

    let mut meta = Reader::new(meta_payload);
    let feature_set = mcodec::decode_feature_set(&mut meta)?;
    let catalog = Catalog::new(feature_set);
    let mut counts = Reader::new(counts_payload);
    let store = mcodec::decode_store(&mut counts, &catalog)?;
    if !counts.is_exhausted() {
        return Err(SnapshotError::Decode(BinError::Malformed(format!(
            "{} trailing bytes after the count store",
            counts.remaining()
        ))));
    }
    Ok(AlignmentSession {
        catalog,
        threading: store.threading(),
        counts: store,
        stage: Counted::new(),
    })
}

/// Writes snapshot `bytes` to `path` atomically-by-rename: bytes go to a
/// uniquely named `<path>.tmp.<pid>-<n>` sibling first, are fsynced to
/// stable storage, and only then replace `path` — so a crash (process or
/// power) mid-write can never leave a half-written file under the
/// snapshot's name, and concurrent saves to the same path cannot publish
/// each other's partial writes (last completed rename wins). The parent
/// directory is fsynced best-effort after the rename (not all platforms
/// support opening a directory), which is what makes the *rename itself*
/// durable on crash-consistent filesystems. The one shared write path
/// for [`save`] and `SessionPool::save`.
pub(crate) fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), SnapshotError> {
    use std::io::Write;
    static SAVE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let seq = SAVE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp.{}-{seq}", std::process::id()));
    let tmp = std::path::PathBuf::from(tmp);
    let write_synced = || -> std::io::Result<()> {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        // Without this, delayed allocation could persist the rename but
        // not the data, leaving a torn file under the final name after
        // power loss — exactly what atomic-by-rename promises against.
        file.sync_all()
    };
    if let Err(e) = write_synced() {
        std::fs::remove_file(&tmp).ok();
        return Err(SnapshotError::Io(e));
    }
    if let Err(e) = std::fs::rename(&tmp, path) {
        std::fs::remove_file(&tmp).ok();
        return Err(SnapshotError::Io(e));
    }
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        if let Ok(dir) = std::fs::File::open(dir) {
            dir.sync_all().ok();
        }
    }
    Ok(())
}

/// Saves a [`Counted`] session to `path`, atomically-by-rename: bytes
/// land in a uniquely named `<path>.tmp.<pid>-<n>` sibling first, then
/// replace `path`, so a crash mid-write never leaves a torn file under
/// the snapshot's name and concurrent saves cannot publish each other's
/// partial writes (last completed rename wins).
///
/// This is the monolithic checkpoint of the journal layer
/// ([`crate::journal`]): the whole counted core becomes the new base and
/// any stale sibling `<path>.jrnl` journal is unlinked, so the file
/// stands alone. Per-round checkpointing at O(|ΔA|) instead of
/// O(session) is what [`crate::journal::Journal`] (and the journal-aware
/// [`crate::SessionPool`]) adds on top.
///
/// # Errors
/// [`SnapshotError::Io`] when writing or renaming fails.
pub fn save(
    session: &AlignmentSession<Counted>,
    path: impl AsRef<Path>,
) -> Result<(), SnapshotError> {
    crate::journal::checkpoint_monolithic(path.as_ref(), &to_bytes(session))
        .map_err(crate::journal::JournalError::demote)
}

/// Opens the snapshot at `path` as a fresh [`Counted`] session.
///
/// # Errors
/// See [`SnapshotError`].
pub fn open(path: impl AsRef<Path>) -> Result<AlignmentSession<Counted>, SnapshotError> {
    let bytes = std::fs::read(path.as_ref())?;
    from_bytes(&bytes)
}
