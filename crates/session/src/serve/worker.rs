//! The serving worker: one process, one [`SessionPool`], a frame loop
//! over stdin/stdout.
//!
//! A worker is deliberately dumb: it decodes frames off stdin in arrival
//! order, serves each request against its pool, and writes one response
//! frame per request — batched per read so a burst of pipelined requests
//! costs one flush, not one per message. All recovery intelligence lives
//! in the coordinator; the worker's only contract is the **write-ahead
//! journal**: every update is journaled before it is applied, so
//! whatever the worker was doing when it died, the base+journal pair on
//! disk replays to a state the coordinator can hand to a replacement
//! process ([`Request::Checkpoint`] is the fsync point, exactly as in
//! [`crate::journal`]).
//!
//! Journals are bounded by **background compaction**: after each update
//! batch the worker evaluates its [`CompactionPolicy`]
//! (`SERVE_COMPACT`, default 1 MiB of journal bytes) via
//! [`SessionPool::maybe_compact`] — the fold stages off-thread while the
//! request loop keeps serving.
//!
//! ## Fault injection (`SERVE_FAULT`)
//!
//! The restart-and-replay path needs deterministic crashes to test
//! against, so a worker arms itself from the `SERVE_FAULT` environment
//! variable (the coordinator strips it when respawning, so an injected
//! fault fires at most once per worker slot):
//!
//! * `exit:<n>` — exit before serving request index `n` (a crash that
//!   loses the request entirely);
//! * `exit-after:<n>` — serve request `n` (journal append included),
//!   then exit **without flushing responses** (the applied-but-unacked
//!   window: the journal has the update, the client has no answer —
//!   resubmission must be idempotent);
//! * `stall:<n>` — hang forever at request `n` (the deadline path: the
//!   coordinator must kill and replace, not wait).

use super::protocol::{
    decode_frame, decode_request, encode_response, ErrorCode, ProtocolError, Request, Response,
};
use crate::journal::CompactionPolicy;
use crate::pool::{PoolError, SessionId, SessionPool};
use std::collections::HashMap;
use std::io::{Read, Write};

/// A deterministic crash point parsed from `SERVE_FAULT`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Exit before serving request index `.0`.
    Exit(u64),
    /// Serve request index `.0`, then exit without flushing.
    ExitAfter(u64),
    /// Stall forever at request index `.0`.
    Stall(u64),
}

impl Fault {
    /// Parses a `SERVE_FAULT` value (`exit:<n>` / `exit-after:<n>` /
    /// `stall:<n>`); `None` for anything unparseable — a misspelled
    /// fault must not crash production workers.
    pub fn parse(spec: &str) -> Option<Fault> {
        let (kind, n) = spec.split_once(':')?;
        let n = n.trim().parse().ok()?;
        match kind.trim() {
            "exit" => Some(Fault::Exit(n)),
            "exit-after" => Some(Fault::ExitAfter(n)),
            "stall" => Some(Fault::Stall(n)),
            _ => None,
        }
    }
}

/// Parses a `SERVE_COMPACT` value (`never` / `everyn:<n>` /
/// `bytes:<n>`); `None` for anything unparseable.
pub fn parse_compaction(spec: &str) -> Option<CompactionPolicy> {
    if spec.trim() == "never" {
        return Some(CompactionPolicy::Never);
    }
    let (kind, n) = spec.split_once(':')?;
    match kind.trim() {
        "everyn" => Some(CompactionPolicy::EveryN(n.trim().parse().ok()?)),
        "bytes" => Some(CompactionPolicy::Bytes(n.trim().parse().ok()?)),
        _ => None,
    }
}

/// The process exit code an injected fault exits with — distinguishable
/// from a clean shutdown (0) and a protocol teardown (2) in test output.
pub const FAULT_EXIT_CODE: i32 = 17;

/// Serves frames from stdin to stdout until `Shutdown`, stdin EOF, or a
/// corrupt stream; returns the process exit code. This is the entire
/// worker binary — `serve_worker` is a two-line wrapper around it.
pub fn worker_main() -> i32 {
    let fault = std::env::var("SERVE_FAULT")
        .ok()
        .and_then(|s| Fault::parse(&s));
    let compaction = std::env::var("SERVE_COMPACT")
        .ok()
        .and_then(|s| parse_compaction(&s))
        .unwrap_or(CompactionPolicy::Bytes(1 << 20));
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    run_worker(stdin.lock(), stdout.lock(), fault, compaction)
}

/// The worker loop over arbitrary byte streams — the process-free seam
/// the protocol tests drive directly.
pub fn run_worker(
    mut input: impl Read,
    mut output: impl Write,
    fault: Option<Fault>,
    compaction: CompactionPolicy,
) -> i32 {
    let mut pool = SessionPool::new(1);
    pool.set_compaction(compaction);
    let mut slots: HashMap<u64, SessionId> = HashMap::new();

    // Readiness handshake: seq 0 is reserved for this one unsolicited
    // frame.
    let hello = encode_response(
        0,
        &Response::Hello {
            pid: std::process::id() as u64,
        },
    );
    if output
        .write_all(&hello)
        .and_then(|()| output.flush())
        .is_err()
    {
        return 2;
    }

    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 64 * 1024];
    let mut served: u64 = 0;
    loop {
        let n = match input.read(&mut chunk) {
            Ok(0) => return 0, // coordinator closed the pipe: clean exit
            Ok(n) => n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return 2,
        };
        buf.extend_from_slice(&chunk[..n]);

        // Serve every complete frame in the buffer, then flush once —
        // pipelined bursts are batched on both sides of the pipe.
        let mut out: Vec<u8> = Vec::new();
        let mut consumed_total = 0usize;
        loop {
            let (payload, consumed) = match decode_frame(&buf[consumed_total..]) {
                Ok(Some(hit)) => hit,
                Ok(None) => break,
                Err(e) => {
                    // A corrupt stream cannot be resynchronized: report
                    // once (seq 0 — the frame's own seq is unknowable)
                    // and tear down.
                    let err = encode_response(0, &protocol_teardown(&e));
                    let _ = output.write_all(&out);
                    let _ = output.write_all(&err);
                    let _ = output.flush();
                    return 2;
                }
            };
            let (seq, request) = match decode_request(payload) {
                Ok(decoded) => decoded,
                Err(e) => {
                    let err = encode_response(0, &protocol_teardown(&e));
                    let _ = output.write_all(&out);
                    let _ = output.write_all(&err);
                    let _ = output.flush();
                    return 2;
                }
            };
            consumed_total += consumed;

            match fault {
                Some(Fault::Exit(at)) if served == at => return FAULT_EXIT_CODE,
                Some(Fault::Stall(at)) if served == at => loop {
                    std::thread::sleep(std::time::Duration::from_secs(3600));
                },
                _ => {}
            }

            let shutdown = matches!(request, Request::Shutdown);
            let response = serve_request(&mut pool, &mut slots, request);
            out.extend_from_slice(&encode_response(seq, &response));

            if let Some(Fault::ExitAfter(at)) = fault {
                if served == at {
                    // The update (if any) is journaled; the response is
                    // not flushed — the applied-but-unacked crash.
                    return FAULT_EXIT_CODE;
                }
            }
            served += 1;

            if shutdown {
                let _ = output.write_all(&out);
                let _ = output.flush();
                return 0;
            }
        }
        buf.drain(..consumed_total);
        if !out.is_empty() && (output.write_all(&out).is_err() || output.flush().is_err()) {
            return 2; // coordinator is gone
        }
    }
}

fn protocol_teardown(e: &ProtocolError) -> Response {
    Response::Error {
        code: ErrorCode::BadRequest,
        message: format!("protocol stream corrupt: {e}"),
    }
}

/// Serves one decoded request against the worker's pool.
fn serve_request(
    pool: &mut SessionPool,
    slots: &mut HashMap<u64, SessionId>,
    request: Request,
) -> Response {
    match request {
        Request::Open { slot, path } => match pool.open(&path) {
            Ok(id) => {
                slots.insert(slot, id);
                match pool.n_anchors(id) {
                    Ok(n) => Response::Opened {
                        slot,
                        n_anchors: n as u64,
                    },
                    Err(e) => error_response(ErrorCode::Internal, &e),
                }
            }
            Err(e) => error_response(ErrorCode::Open, &e),
        },
        Request::UpdateAnchors { slot, edges } => {
            let Some(&id) = slots.get(&slot) else {
                return unknown_slot(slot);
            };
            match pool.update_anchors(id, &edges) {
                Ok(applied) => {
                    // Journal growth is bounded in the background; a
                    // failed *enqueue* is logged, not fatal — the policy
                    // re-arms at the next durability point.
                    if let Err(e) = pool.maybe_compact(id) {
                        eprintln!("serve-worker: compaction enqueue failed on slot {slot}: {e}");
                    }
                    match pool.n_anchors(id) {
                        Ok(n) => Response::Updated {
                            slot,
                            applied: applied as u64,
                            n_anchors: n as u64,
                        },
                        Err(e) => error_response(ErrorCode::Internal, &e),
                    }
                }
                Err(e @ PoolError::Session(_)) => error_response(ErrorCode::Update, &e),
                Err(e @ PoolError::Journal(_)) => error_response(ErrorCode::Journal, &e),
                Err(e) => error_response(ErrorCode::Internal, &e),
            }
        }
        Request::Query { slot, pairs } => {
            let Some(&id) = slots.get(&slot) else {
                return unknown_slot(slot);
            };
            match pool.with_counted(id, |s| {
                let (rows, cols) = s.anchor().shape();
                pairs
                    .iter()
                    .map(|&(l, r)| {
                        let (l, r) = (l as usize, r as usize);
                        if l >= rows || r >= cols {
                            return 0.0;
                        }
                        (0..s.catalog().len())
                            .map(|i| s.count_of(i).get(l, r))
                            .sum()
                    })
                    .collect::<Vec<f64>>()
            }) {
                Ok(scores) => Response::Scores(scores),
                Err(e) => error_response(ErrorCode::Internal, &e),
            }
        }
        Request::Align { slot, left, k } => {
            let Some(&id) = slots.get(&slot) else {
                return unknown_slot(slot);
            };
            match pool.with_counted(id, |s| {
                let (rows, cols) = s.anchor().shape();
                if (left as usize) >= rows {
                    return None;
                }
                let mut hits: Vec<(u32, f64)> = (0..cols)
                    .filter_map(|r| {
                        let score: f64 = (0..s.catalog().len())
                            .map(|i| s.count_of(i).get(left as usize, r))
                            .sum();
                        (score > 0.0).then_some((r as u32, score))
                    })
                    .collect();
                // Deterministic order: score descending (total order, so
                // NaN cannot scramble it), right-index ascending on ties.
                hits.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
                hits.truncate(k as usize);
                Some(hits)
            }) {
                Ok(Some(hits)) => Response::Aligned(hits),
                Ok(None) => Response::Error {
                    code: ErrorCode::BadRequest,
                    message: format!("left user {left} is out of range for slot {slot}"),
                },
                Err(e) => error_response(ErrorCode::Internal, &e),
            }
        }
        Request::Checkpoint { slot } => {
            let Some(&id) = slots.get(&slot) else {
                return unknown_slot(slot);
            };
            match pool.checkpoint(id) {
                Ok(()) => match pool.n_anchors(id) {
                    Ok(n) => Response::Checkpointed {
                        n_anchors: n as u64,
                    },
                    Err(e) => error_response(ErrorCode::Internal, &e),
                },
                Err(e) => error_response(ErrorCode::Journal, &e),
            }
        }
        Request::Shutdown => {
            // Let in-flight folds land before acknowledging: the
            // coordinator may hand these files to a replacement worker
            // the moment the ack arrives.
            for (id, e) in pool.flush_compactions() {
                eprintln!("serve-worker: background fold failed on {id}: {e}");
            }
            Response::ShuttingDown
        }
    }
}

fn unknown_slot(slot: u64) -> Response {
    Response::Error {
        code: ErrorCode::UnknownSlot,
        message: format!("slot {slot} was never opened on this worker"),
    }
}

fn error_response(code: ErrorCode, e: &dyn std::fmt::Display) -> Response {
    Response::Error {
        code,
        message: e.to_string(),
    }
}
