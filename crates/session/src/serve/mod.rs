//! # serve — the multi-process serving tier over the journal
//!
//! [`pool`](crate::pool) serves many sessions inside one process; this
//! module puts that pool behind a **process boundary** and runs N of
//! them, because at serving scale the failure domain has to be a
//! process: a wedged or dying worker must not take the tier with it,
//! and recovery must come from durable state, not from heroics inside
//! the crashed address space.
//!
//! The tier is three pieces, one per submodule:
//!
//! * [`protocol`] — the length-prefixed, CRC-framed request/response
//!   codec both sides speak over stdin/stdout pipes. Frames carry a
//!   client-chosen `seq` so responses can be matched (and replayed)
//!   out of lockstep; torn frames mean *wait*, corrupt frames mean
//!   *tear the stream down* — never panic, never over-allocate.
//! * [`worker`] — the child process: one [`SessionPool`](crate::pool::SessionPool)
//!   behind a stdio loop. Updates are write-ahead journaled before the
//!   ack, compaction is handed to the pool's background compactor, and
//!   a `SERVE_FAULT` environment knob lets tests make the worker exit
//!   or stall at an exact request index.
//! * [`coordinator`] — the parent: spawns workers, routes `slot % N`,
//!   batches, bounds in-flight work, enforces per-request deadlines,
//!   and on worker death restarts it and **replays** — reopening every
//!   slot from its base+journal (bit-equal by the journal contract)
//!   and resubmitting unacknowledged requests.
//!
//! The durability story is deliberately boring: the coordinator never
//! holds state that matters. Everything a worker knows is reconstructible
//! from the base snapshot + journal on disk, which is exactly what the
//! fault-injection tests prove — kill a worker mid-stream, and the
//! restarted one answers bit-equal to a run that was never interrupted.

pub mod coordinator;
pub mod protocol;
pub mod worker;

pub use coordinator::{Coordinator, ServeConfig, ServeError, WorkerSpec};
pub use protocol::{
    decode_frame, decode_request, decode_response, encode_request, encode_response, ErrorCode,
    ProtocolError, Request, Response, MAX_FRAME_LEN,
};
pub use worker::{worker_main, Fault, FAULT_EXIT_CODE};
