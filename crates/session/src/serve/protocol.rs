//! The serving tier's wire protocol: length-prefixed, CRC-framed
//! request/response messages over a byte stream.
//!
//! ## Frame layout
//!
//! ```text
//! frame    len u32 | crc u32(payload) | payload
//! payload  seq u64 | kind u8 | body
//! ```
//!
//! The same frame shape as the ΔA journal (`session::journal`), for the
//! same reason: a reader over a pipe sees arbitrary prefixes of the
//! stream, and the length prefix + payload CRC split every anomaly into
//! exactly two cases — **incomplete** (wait for more bytes; never an
//! error) and **corrupt** (refuse with a typed [`ProtocolError`]; never a
//! panic, never a guess). [`decode_frame`] is that split: `Ok(None)`
//! means wait, `Err` means the stream is unrecoverable.
//!
//! `len` is bounded by [`MAX_FRAME_LEN`] *before* any allocation, and
//! every variable-length body field decodes through the vendored
//! reader's `seq_len` guard — a hostile or bit-rotted length prefix is
//! refused while it is still just an integer.
//!
//! The `seq` is a per-connection correlation id chosen by the requester;
//! responses echo it verbatim, which is what lets the coordinator keep
//! many requests in flight per worker and resubmit the undone ones —
//! same seq — after a restart. Seq `0` is reserved for the worker's
//! unsolicited [`Response::Hello`] handshake.

use crate::AnchorEdge;
use hetnet::UserId;
use serde::bin::{crc32, Error as BinError, Reader, Writer};
use std::fmt;

/// Hard upper bound on a frame's payload length (64 MiB). A `len` above
/// this is refused before any buffering — the guard that keeps a corrupt
/// or hostile length prefix from ballooning the reader's buffer.
pub const MAX_FRAME_LEN: u32 = 1 << 26;

/// Frame overhead: the `len` + `crc` prefix.
pub const FRAME_OVERHEAD: usize = 8;

const REQ_OPEN: u8 = 1;
const REQ_UPDATE: u8 = 2;
const REQ_QUERY: u8 = 3;
const REQ_ALIGN: u8 = 4;
const REQ_CHECKPOINT: u8 = 5;
const REQ_SHUTDOWN: u8 = 6;

const RESP_OPENED: u8 = 1;
const RESP_UPDATED: u8 = 2;
const RESP_SCORES: u8 = 3;
const RESP_ALIGNED: u8 = 4;
const RESP_CHECKPOINTED: u8 = 5;
const RESP_SHUTTING_DOWN: u8 = 6;
const RESP_ERROR: u8 = 7;
const RESP_HELLO: u8 = 8;

/// A malformed or corrupt frame — the stream cannot be trusted past it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The frame's declared payload length exceeds [`MAX_FRAME_LEN`].
    FrameTooLarge {
        /// The declared payload length.
        declared: u32,
    },
    /// The payload failed its CRC — bit damage between the peers.
    Checksum {
        /// CRC the frame header promised.
        expected: u32,
        /// CRC the payload actually has.
        found: u32,
    },
    /// The payload decoded structurally wrong (truncated field, bad
    /// length prefix, trailing bytes) despite a matching CRC.
    Decode(BinError),
    /// The payload's kind byte names no known message.
    UnknownKind(u8),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::FrameTooLarge { declared } => write!(
                f,
                "frame declares a {declared}-byte payload (max {MAX_FRAME_LEN})"
            ),
            ProtocolError::Checksum { expected, found } => write!(
                f,
                "frame payload checksum mismatch (expected {expected:#010x}, found {found:#010x})"
            ),
            ProtocolError::Decode(e) => write!(f, "frame payload: {e}"),
            ProtocolError::UnknownKind(k) => write!(f, "unknown message kind {k}"),
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtocolError::Decode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BinError> for ProtocolError {
    fn from(e: BinError) -> Self {
        ProtocolError::Decode(e)
    }
}

/// One client request to a serving worker. Slots are coordinator-chosen
/// dense ids; the worker maps them to its pool sessions.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Open the base snapshot (+ journal) at `path` into slot `slot`.
    Open {
        /// Coordinator-assigned slot id.
        slot: u64,
        /// Path of the base snapshot on the worker's filesystem.
        path: String,
    },
    /// Apply confirmed anchors to a slot, write-ahead through its
    /// journal.
    UpdateAnchors {
        /// Target slot.
        slot: u64,
        /// The confirmed anchor batch.
        edges: Vec<AnchorEdge>,
    },
    /// Score a batch of candidate pairs against a slot's counts.
    Query {
        /// Target slot.
        slot: u64,
        /// `(left, right)` user pairs to score.
        pairs: Vec<(u32, u32)>,
    },
    /// Top-`k` alignment candidates for one left user.
    Align {
        /// Target slot.
        slot: u64,
        /// The left-network user to align.
        left: u32,
        /// How many candidates to return.
        k: u32,
    },
    /// Fsync the slot's journal (the durability point).
    Checkpoint {
        /// Target slot.
        slot: u64,
    },
    /// Drain and exit cleanly.
    Shutdown,
}

/// Typed failure codes a worker reports inside [`Response::Error`] —
/// coarse enough to be stable across versions, fine enough for the
/// coordinator to distinguish "your request is wrong" from "the worker
/// is hurt".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request names a slot the worker never opened.
    UnknownSlot,
    /// Opening the snapshot/journal failed.
    Open,
    /// The update batch was rejected (validation) — nothing was applied
    /// or journaled.
    Update,
    /// A journal operation (checkpoint, fold) failed.
    Journal,
    /// The request itself is invalid (out-of-range user, zero `k`).
    BadRequest,
    /// Anything else — the worker is in trouble.
    Internal,
}

impl ErrorCode {
    fn to_u8(self) -> u8 {
        match self {
            ErrorCode::UnknownSlot => 1,
            ErrorCode::Open => 2,
            ErrorCode::Update => 3,
            ErrorCode::Journal => 4,
            ErrorCode::BadRequest => 5,
            ErrorCode::Internal => 6,
        }
    }

    fn from_u8(v: u8) -> Result<Self, ProtocolError> {
        Ok(match v {
            1 => ErrorCode::UnknownSlot,
            2 => ErrorCode::Open,
            3 => ErrorCode::Update,
            4 => ErrorCode::Journal,
            5 => ErrorCode::BadRequest,
            6 => ErrorCode::Internal,
            other => {
                return Err(ProtocolError::Decode(BinError::Malformed(format!(
                    "unknown error code {other}"
                ))))
            }
        })
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ErrorCode::UnknownSlot => "unknown-slot",
            ErrorCode::Open => "open",
            ErrorCode::Update => "update",
            ErrorCode::Journal => "journal",
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::Internal => "internal",
        };
        f.write_str(name)
    }
}

/// One worker response. Every request gets exactly one, echoing its seq;
/// [`Response::Hello`] is the one unsolicited message (seq 0, sent once
/// at startup as the readiness handshake).
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// [`Request::Open`] succeeded.
    Opened {
        /// The slot that was opened.
        slot: u64,
        /// Anchor count after journal replay.
        n_anchors: u64,
    },
    /// [`Request::UpdateAnchors`] succeeded.
    Updated {
        /// The slot that was updated.
        slot: u64,
        /// Genuinely new anchors merged by this batch.
        applied: u64,
        /// Anchor count after the batch.
        n_anchors: u64,
    },
    /// [`Request::Query`] scores, one per requested pair, in order.
    Scores(Vec<f64>),
    /// [`Request::Align`] candidates: `(right_user, score)`, best first.
    Aligned(Vec<(u32, f64)>),
    /// [`Request::Checkpoint`] fsynced the journal.
    Checkpointed {
        /// Anchor count recorded in the checkpoint.
        n_anchors: u64,
    },
    /// [`Request::Shutdown`] acknowledged; the worker exits after
    /// flushing this.
    ShuttingDown,
    /// The request failed; the worker keeps serving.
    Error {
        /// Coarse failure class.
        code: ErrorCode,
        /// Human-readable detail (never parsed).
        message: String,
    },
    /// Startup handshake: the worker is ready (seq 0).
    Hello {
        /// The worker's OS process id, for diagnostics.
        pid: u64,
    },
}

/// Encodes `(seq, request)` as one complete frame, ready to write.
pub fn encode_request(seq: u64, request: &Request) -> Vec<u8> {
    let mut p = Writer::new();
    p.u64(seq);
    match request {
        Request::Open { slot, path } => {
            p.u8(REQ_OPEN);
            p.u64(*slot);
            let bytes = path.as_bytes();
            p.usize(bytes.len());
            p.bytes(bytes);
        }
        Request::UpdateAnchors { slot, edges } => {
            p.u8(REQ_UPDATE);
            p.u64(*slot);
            p.usize(edges.len());
            for e in edges {
                p.u32(e.left.0);
                p.u32(e.right.0);
            }
        }
        Request::Query { slot, pairs } => {
            p.u8(REQ_QUERY);
            p.u64(*slot);
            p.usize(pairs.len());
            for (l, r) in pairs {
                p.u32(*l);
                p.u32(*r);
            }
        }
        Request::Align { slot, left, k } => {
            p.u8(REQ_ALIGN);
            p.u64(*slot);
            p.u32(*left);
            p.u32(*k);
        }
        Request::Checkpoint { slot } => {
            p.u8(REQ_CHECKPOINT);
            p.u64(*slot);
        }
        Request::Shutdown => {
            p.u8(REQ_SHUTDOWN);
        }
    }
    frame(&p.into_bytes())
}

/// Encodes `(seq, response)` as one complete frame, ready to write.
pub fn encode_response(seq: u64, response: &Response) -> Vec<u8> {
    let mut p = Writer::new();
    p.u64(seq);
    match response {
        Response::Opened { slot, n_anchors } => {
            p.u8(RESP_OPENED);
            p.u64(*slot);
            p.u64(*n_anchors);
        }
        Response::Updated {
            slot,
            applied,
            n_anchors,
        } => {
            p.u8(RESP_UPDATED);
            p.u64(*slot);
            p.u64(*applied);
            p.u64(*n_anchors);
        }
        Response::Scores(scores) => {
            p.u8(RESP_SCORES);
            p.usize(scores.len());
            for s in scores {
                p.f64(*s);
            }
        }
        Response::Aligned(hits) => {
            p.u8(RESP_ALIGNED);
            p.usize(hits.len());
            for (right, score) in hits {
                p.u32(*right);
                p.f64(*score);
            }
        }
        Response::Checkpointed { n_anchors } => {
            p.u8(RESP_CHECKPOINTED);
            p.u64(*n_anchors);
        }
        Response::ShuttingDown => {
            p.u8(RESP_SHUTTING_DOWN);
        }
        Response::Error { code, message } => {
            p.u8(RESP_ERROR);
            p.u8(code.to_u8());
            let bytes = message.as_bytes();
            p.usize(bytes.len());
            p.bytes(bytes);
        }
        Response::Hello { pid } => {
            p.u8(RESP_HELLO);
            p.u64(*pid);
        }
    }
    frame(&p.into_bytes())
}

fn frame(payload: &[u8]) -> Vec<u8> {
    let mut w = Writer::with_capacity(FRAME_OVERHEAD + payload.len());
    w.u32(payload.len() as u32);
    w.u32(crc32(payload));
    w.bytes(payload);
    w.into_bytes()
}

/// Tries to split one frame off the front of `buf`.
///
/// * `Ok(None)` — `buf` holds an incomplete frame; read more bytes and
///   try again (a torn frame is *never* an error: pipes deliver
///   arbitrary prefixes).
/// * `Ok(Some((payload, consumed)))` — one intact, CRC-verified payload;
///   drop `consumed` bytes from the front of `buf` before the next call.
///
/// # Errors
/// [`ProtocolError::FrameTooLarge`] before any buffering when the length
/// prefix exceeds [`MAX_FRAME_LEN`]; [`ProtocolError::Checksum`] when a
/// complete payload fails its CRC. Both mean the stream is corrupt — the
/// connection must be torn down, not resynchronized.
pub fn decode_frame(buf: &[u8]) -> Result<Option<(&[u8], usize)>, ProtocolError> {
    if buf.len() < FRAME_OVERHEAD {
        return Ok(None);
    }
    let mut r = Reader::new(&buf[..FRAME_OVERHEAD]);
    let len = r.u32()?;
    let crc = r.u32()?;
    if len > MAX_FRAME_LEN {
        return Err(ProtocolError::FrameTooLarge { declared: len });
    }
    let len = len as usize;
    let Some(total) = FRAME_OVERHEAD.checked_add(len).filter(|&t| t <= buf.len()) else {
        return Ok(None);
    };
    let payload = &buf[FRAME_OVERHEAD..total];
    let found = crc32(payload);
    if found != crc {
        return Err(ProtocolError::Checksum {
            expected: crc,
            found,
        });
    }
    Ok(Some((payload, total)))
}

/// Decodes a frame payload (from [`decode_frame`]) as `(seq, request)`.
///
/// # Errors
/// [`ProtocolError::Decode`] / [`ProtocolError::UnknownKind`] on
/// structural damage — every sequence length is `seq_len`-guarded before
/// its preallocation.
pub fn decode_request(payload: &[u8]) -> Result<(u64, Request), ProtocolError> {
    let mut r = Reader::new(payload);
    let seq = r.u64()?;
    let request = match r.u8()? {
        REQ_OPEN => {
            let slot = r.u64()?;
            let n = r.seq_len(1)?;
            let bytes = r.bytes(n)?;
            let path = String::from_utf8(bytes.to_vec()).map_err(|_| {
                ProtocolError::Decode(BinError::Malformed("open path is not UTF-8".into()))
            })?;
            Request::Open { slot, path }
        }
        REQ_UPDATE => {
            let slot = r.u64()?;
            let n = r.seq_len(8)?;
            let mut edges = Vec::with_capacity(n);
            for _ in 0..n {
                let left = UserId(r.u32()?);
                let right = UserId(r.u32()?);
                edges.push(AnchorEdge { left, right });
            }
            Request::UpdateAnchors { slot, edges }
        }
        REQ_QUERY => {
            let slot = r.u64()?;
            let n = r.seq_len(8)?;
            let mut pairs = Vec::with_capacity(n);
            for _ in 0..n {
                pairs.push((r.u32()?, r.u32()?));
            }
            Request::Query { slot, pairs }
        }
        REQ_ALIGN => Request::Align {
            slot: r.u64()?,
            left: r.u32()?,
            k: r.u32()?,
        },
        REQ_CHECKPOINT => Request::Checkpoint { slot: r.u64()? },
        REQ_SHUTDOWN => Request::Shutdown,
        kind => return Err(ProtocolError::UnknownKind(kind)),
    };
    expect_exhausted(&r)?;
    Ok((seq, request))
}

/// Decodes a frame payload (from [`decode_frame`]) as `(seq, response)`.
///
/// # Errors
/// As for [`decode_request`].
pub fn decode_response(payload: &[u8]) -> Result<(u64, Response), ProtocolError> {
    let mut r = Reader::new(payload);
    let seq = r.u64()?;
    let response = match r.u8()? {
        RESP_OPENED => Response::Opened {
            slot: r.u64()?,
            n_anchors: r.u64()?,
        },
        RESP_UPDATED => Response::Updated {
            slot: r.u64()?,
            applied: r.u64()?,
            n_anchors: r.u64()?,
        },
        RESP_SCORES => {
            let n = r.seq_len(8)?;
            let mut scores = Vec::with_capacity(n);
            for _ in 0..n {
                scores.push(r.f64()?);
            }
            Response::Scores(scores)
        }
        RESP_ALIGNED => {
            let n = r.seq_len(12)?;
            let mut hits = Vec::with_capacity(n);
            for _ in 0..n {
                hits.push((r.u32()?, r.f64()?));
            }
            Response::Aligned(hits)
        }
        RESP_CHECKPOINTED => Response::Checkpointed {
            n_anchors: r.u64()?,
        },
        RESP_SHUTTING_DOWN => Response::ShuttingDown,
        RESP_ERROR => {
            let code = ErrorCode::from_u8(r.u8()?)?;
            let n = r.seq_len(1)?;
            let bytes = r.bytes(n)?;
            let message = String::from_utf8(bytes.to_vec()).map_err(|_| {
                ProtocolError::Decode(BinError::Malformed("error message is not UTF-8".into()))
            })?;
            Response::Error { code, message }
        }
        RESP_HELLO => Response::Hello { pid: r.u64()? },
        kind => return Err(ProtocolError::UnknownKind(kind)),
    };
    expect_exhausted(&r)?;
    Ok((seq, response))
}

fn expect_exhausted(r: &Reader<'_>) -> Result<(), ProtocolError> {
    if r.is_exhausted() {
        Ok(())
    } else {
        Err(ProtocolError::Decode(BinError::Malformed(format!(
            "{} trailing bytes in a protocol message",
            r.remaining()
        ))))
    }
}
