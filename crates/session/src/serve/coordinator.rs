//! The serving coordinator: shards slots across N worker processes and
//! survives their deaths.
//!
//! One [`Coordinator`] owns N child processes (spawned from a
//! [`WorkerSpec`], each running [`super::worker::worker_main`] over its
//! stdin/stdout), routes every slot to `slot % N`, and gives callers a
//! synchronous request API safe to hammer from many client threads at
//! once. Three mechanisms carry the serving contract:
//!
//! * **Admission control** — a [`ClaimWindow`] caps concurrent client
//!   operations tier-wide; excess callers block at the door instead of
//!   ballooning pipe buffers and pending maps.
//! * **Deadlines** — every call waits at most [`ServeConfig::deadline`]
//!   for its response before declaring the worker wedged and replacing
//!   it (the `stall` fault in the test harness exercises exactly this).
//! * **Restart-and-replay** — when a worker dies or stalls, the
//!   coordinator kills it, respawns from the spec (minus `SERVE_FAULT`,
//!   so injected faults fire once), re-`Open`s every slot the dead
//!   worker held — the **base+journal pair on disk is the whole
//!   hand-off**; a restarted worker replays to a bit-equal session — and
//!   resubmits every request that never got its response, original seq
//!   numbers intact. Updates are idempotent set-unions, so a request the
//!   dead worker *did* apply (journaled, never acked) is safe to submit
//!   twice; [`ServeConfig::restart_limit`] bounds how many times a
//!   worker slot may be replaced before its callers get
//!   [`ServeError::RestartLimit`].
//!
//! Request batching rides the same path: [`Coordinator::update_many`]
//! groups jobs per worker and writes each group as one pipelined burst —
//! one stdin flush per worker, one stdout flush per worker on the way
//! back (the worker batches responses per read) — instead of one
//! round-trip per job.

use super::protocol::{
    decode_frame, decode_response, encode_request, ProtocolError, Request, Response,
};
use crate::workers::ClaimWindow;
use crate::AnchorEdge;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::io::{Read, Write};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// How to spawn one worker process.
#[derive(Debug, Clone)]
pub struct WorkerSpec {
    /// The worker executable (typically the `serve_worker` bin, or the
    /// calling binary re-executing itself with a `--worker` flag).
    pub exe: PathBuf,
    /// Arguments passed to every spawn.
    pub args: Vec<String>,
    /// Extra environment for **generation-0 spawns only** — this is
    /// where tests plant `SERVE_FAULT`; respawns strip it so a fault
    /// fires at most once per worker slot.
    pub envs: Vec<(String, String)>,
}

impl WorkerSpec {
    /// A spec running `exe` with no extra args or environment.
    pub fn new(exe: impl Into<PathBuf>) -> Self {
        WorkerSpec {
            exe: exe.into(),
            args: Vec::new(),
            envs: Vec::new(),
        }
    }
}

/// Tier-level knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Number of worker processes.
    pub workers: usize,
    /// Concurrent client operations admitted tier-wide (a batched call
    /// counts once); excess callers block until a slot frees.
    pub max_in_flight: usize,
    /// How long one request may wait for its response before the worker
    /// is declared wedged and replaced.
    pub deadline: Duration,
    /// How many times one worker slot may be restarted before callers
    /// get [`ServeError::RestartLimit`].
    pub restart_limit: u32,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            max_in_flight: 64,
            deadline: Duration::from_secs(10),
            restart_limit: 3,
        }
    }
}

/// Everything a serving call can fail with.
#[derive(Debug)]
pub enum ServeError {
    /// Spawning a worker process failed.
    Spawn(std::io::Error),
    /// Writing to or reading from a worker pipe failed.
    Io(std::io::Error),
    /// The byte stream from a worker was corrupt.
    Protocol(ProtocolError),
    /// The worker served the request and reported a typed failure.
    Worker {
        /// Coarse failure class.
        code: super::protocol::ErrorCode,
        /// Worker-side detail.
        message: String,
    },
    /// The worker slot burned through its restart budget; the tier keeps
    /// serving other workers, but this one is gone.
    RestartLimit {
        /// Index of the exhausted worker slot.
        worker: usize,
    },
    /// The response kind did not match the request (a worker bug).
    Unexpected {
        /// What the caller was waiting for.
        expected: &'static str,
    },
    /// The coordinator has been shut down.
    ShutDown,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Spawn(e) => write!(f, "spawn worker: {e}"),
            ServeError::Io(e) => write!(f, "worker pipe: {e}"),
            ServeError::Protocol(e) => write!(f, "worker stream: {e}"),
            ServeError::Worker { code, message } => write!(f, "worker error [{code}]: {message}"),
            ServeError::RestartLimit { worker } => {
                write!(f, "worker {worker} exceeded its restart budget")
            }
            ServeError::Unexpected { expected } => {
                write!(
                    f,
                    "worker sent the wrong response kind (expected {expected})"
                )
            }
            ServeError::ShutDown => write!(f, "coordinator is shut down"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Spawn(e) | ServeError::Io(e) => Some(e),
            ServeError::Protocol(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ProtocolError> for ServeError {
    fn from(e: ProtocolError) -> Self {
        ServeError::Protocol(e)
    }
}

/// One request the coordinator has written but not yet seen answered.
/// The request itself is kept so a restart can resubmit it verbatim.
struct PendingEntry {
    request: Request,
    done: Option<Response>,
    /// Coordinator-internal (a restart's re-`Open`): nobody is waiting,
    /// the reader thread discards the response on arrival.
    internal: bool,
}

/// Mutable per-worker state, under one lock with one condvar. The stdin
/// handle lives in its own lock so a client writing a large frame never
/// blocks the reader thread's deposits (which need this lock).
struct WorkerState {
    child: Option<Child>,
    generation: u64,
    /// False from the moment the reader thread sees EOF / corruption
    /// until a restart brings a new generation up.
    alive: bool,
    /// True once the restart budget is burned: terminal.
    failed: bool,
    /// True once the current generation's `Hello` arrived.
    ready: bool,
    next_seq: u64,
    pending: HashMap<u64, PendingEntry>,
    /// Every slot this worker has successfully opened, and from where —
    /// the replay script for restarts. BTreeMap for deterministic
    /// re-open order.
    registry: BTreeMap<u64, String>,
    restarts: u32,
}

struct WorkerShared {
    index: usize,
    spec: WorkerSpec,
    deadline: Duration,
    restart_limit: u32,
    state: Mutex<WorkerState>,
    cv: Condvar,
    stdin: Mutex<Option<ChildStdin>>,
}

fn lock_state(shared: &WorkerShared) -> std::sync::MutexGuard<'_, WorkerState> {
    shared.state.lock().unwrap_or_else(PoisonError::into_inner)
}

impl WorkerShared {
    /// Spawns a child for `generation`, wires its pipes, and starts the
    /// generation's reader thread. Caller holds the state lock.
    fn spawn_child(
        self: &Arc<Self>,
        st: &mut WorkerState,
        first_generation: bool,
    ) -> Result<(), ServeError> {
        let mut cmd = Command::new(&self.spec.exe);
        cmd.args(&self.spec.args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit());
        for (k, v) in &self.spec.envs {
            // Injected faults are for first spawns only: a restarted
            // worker must come up healthy or restart-and-replay could
            // never converge.
            if !first_generation && k == "SERVE_FAULT" {
                continue;
            }
            cmd.env(k, v);
        }
        let mut child = cmd.spawn().map_err(ServeError::Spawn)?;
        let stdin = child.stdin.take();
        let stdout = child.stdout.take();
        st.generation += 1;
        st.alive = true;
        st.ready = false;
        st.child = Some(child);
        *self.stdin.lock().unwrap_or_else(PoisonError::into_inner) = stdin;
        let generation = st.generation;
        let shared = Arc::clone(self);
        if let Some(stdout) = stdout {
            // srclint: allow(raw_spawn, reason = "one detached reader thread per worker generation; it exits on pipe EOF or generation change, and the coordinator cannot join it without deadlocking on its own pipe reads")
            std::thread::spawn(move || read_responses(shared, generation, stdout));
        }
        Ok(())
    }

    /// Kills the current child and brings up a replacement: re-opens the
    /// registry, resubmits the undone pending requests (same seqs).
    /// Caller holds the state lock.
    fn restart(self: &Arc<Self>, st: &mut WorkerState) -> Result<(), ServeError> {
        if st.failed {
            return Err(ServeError::RestartLimit { worker: self.index });
        }
        st.restarts += 1;
        if st.restarts > self.restart_limit {
            st.failed = true;
            st.alive = false;
            if let Some(mut child) = st.child.take() {
                child.kill().ok();
                child.wait().ok();
            }
            self.cv.notify_all();
            return Err(ServeError::RestartLimit { worker: self.index });
        }
        if let Some(mut child) = st.child.take() {
            child.kill().ok();
            child.wait().ok();
        }
        // Internal re-opens of the dead generation are moot.
        st.pending.retain(|_, e| !e.internal);
        self.spawn_child(st, false)?;

        // Replay script: every slot first, then the undone requests in
        // seq order — a resubmitted request must find its slot open.
        let mut burst: Vec<u8> = Vec::new();
        for (&slot, path) in &st.registry {
            let seq = st.next_seq;
            st.next_seq += 1;
            let request = Request::Open {
                slot,
                path: path.clone(),
            };
            burst.extend_from_slice(&encode_request(seq, &request));
            st.pending.insert(
                seq,
                PendingEntry {
                    request,
                    done: None,
                    internal: true,
                },
            );
        }
        let mut undone: Vec<u64> = st
            .pending
            .iter()
            .filter(|(_, e)| !e.internal && e.done.is_none())
            .map(|(&seq, _)| seq)
            .collect();
        undone.sort_unstable();
        for seq in undone {
            if let Some(entry) = st.pending.get(&seq) {
                burst.extend_from_slice(&encode_request(seq, &entry.request));
            }
        }
        // The new pipe is empty and the burst is bounded by the
        // admission window, so this write cannot wedge on a full pipe.
        let mut stdin = self.stdin.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(w) = stdin.as_mut() {
            w.write_all(&burst)
                .and_then(|()| w.flush())
                .map_err(ServeError::Io)?;
        }
        Ok(())
    }
}

/// The reader thread for one worker generation: drains stdout, deposits
/// responses by seq, and flags the generation dead on EOF or corruption.
fn read_responses(shared: Arc<WorkerShared>, generation: u64, stdout: impl Read) {
    let mut stdout = stdout;
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 64 * 1024];
    'stream: loop {
        let n = match stdout.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        };
        buf.extend_from_slice(&chunk[..n]);
        let mut consumed_total = 0usize;
        loop {
            let decoded = match decode_frame(&buf[consumed_total..]) {
                Ok(Some((payload, consumed))) => decode_response(payload).map(|r| (r, consumed)),
                Ok(None) => break,
                Err(e) => Err(e),
            };
            let ((seq, response), consumed) = match decoded {
                Ok(hit) => hit,
                Err(_) => break 'stream, // corrupt stream: declare dead
            };
            consumed_total += consumed;
            let mut st = lock_state(&shared);
            if st.generation != generation {
                return; // superseded; the new generation has its own reader
            }
            if seq == 0 {
                if matches!(response, Response::Hello { .. }) {
                    st.ready = true;
                }
                // Any other seq-0 message is the worker's teardown
                // diagnostic; EOF follows, which flags the death.
            } else if let Some(entry) = st.pending.get_mut(&seq) {
                if entry.internal {
                    st.pending.remove(&seq);
                } else {
                    entry.done = Some(response);
                }
            }
            shared.cv.notify_all();
            drop(st);
        }
        buf.drain(..consumed_total);
    }
    let mut st = lock_state(&shared);
    if st.generation == generation {
        st.alive = false;
        shared.cv.notify_all();
    }
}

/// The multi-process serving tier; see the [module docs](self).
pub struct Coordinator {
    workers: Vec<Arc<WorkerShared>>,
    admission: ClaimWindow,
}

impl fmt::Debug for Coordinator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Coordinator")
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl Coordinator {
    /// Spawns `config.workers` worker processes from `spec` and waits
    /// for every `Hello` handshake (bounded by the deadline).
    ///
    /// # Errors
    /// [`ServeError::Spawn`] when a process cannot start;
    /// [`ServeError::Io`] when a worker never says hello.
    pub fn spawn(spec: WorkerSpec, config: ServeConfig) -> Result<Coordinator, ServeError> {
        let n = config.workers.max(1);
        let mut workers = Vec::with_capacity(n);
        for index in 0..n {
            let shared = Arc::new(WorkerShared {
                index,
                spec: spec.clone(),
                deadline: config.deadline,
                restart_limit: config.restart_limit,
                state: Mutex::new(WorkerState {
                    child: None,
                    generation: 0,
                    alive: false,
                    failed: false,
                    ready: false,
                    next_seq: 1, // seq 0 is the Hello channel
                    pending: HashMap::new(),
                    registry: BTreeMap::new(),
                    restarts: 0,
                }),
                cv: Condvar::new(),
                stdin: Mutex::new(None),
            });
            {
                let mut st = lock_state(&shared);
                shared.spawn_child(&mut st, true)?;
            }
            workers.push(shared);
        }
        let coordinator = Coordinator {
            workers,
            admission: ClaimWindow::new(config.max_in_flight.max(1)),
        };
        for shared in &coordinator.workers {
            let deadline_at = Instant::now() + config.deadline;
            let mut st = lock_state(shared);
            while !st.ready {
                if !st.alive || Instant::now() >= deadline_at {
                    return Err(ServeError::Io(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        format!("worker {} never completed its handshake", shared.index),
                    )));
                }
                let (guard, _) = shared
                    .cv
                    .wait_timeout(st, Duration::from_millis(50))
                    .unwrap_or_else(PoisonError::into_inner);
                st = guard;
            }
        }
        Ok(coordinator)
    }

    /// Number of worker processes.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// How many times worker `index` has been restarted (for tests and
    /// ops dashboards).
    pub fn restarts(&self, index: usize) -> u32 {
        self.workers
            .get(index)
            .map(|w| lock_state(w).restarts)
            .unwrap_or(0)
    }

    fn worker_for(&self, slot: u64) -> &Arc<WorkerShared> {
        &self.workers[(slot % self.workers.len() as u64) as usize]
    }

    /// Registers `(seq, request)` as pending and writes its frame.
    /// `flush` batches: pass false while bursting, true on the last.
    fn submit(
        &self,
        shared: &Arc<WorkerShared>,
        request: Request,
        flush: bool,
    ) -> Result<u64, ServeError> {
        let mut st = lock_state(shared);
        if st.failed {
            return Err(ServeError::RestartLimit {
                worker: shared.index,
            });
        }
        if st.child.is_none() {
            return Err(ServeError::ShutDown);
        }
        if !st.alive {
            shared.restart(&mut st)?;
        }
        let seq = st.next_seq;
        st.next_seq += 1;
        let frame = encode_request(seq, &request);
        st.pending.insert(
            seq,
            PendingEntry {
                request,
                done: None,
                internal: false,
            },
        );
        drop(st); // never hold the state lock across a pipe write
        let mut stdin = shared.stdin.lock().unwrap_or_else(PoisonError::into_inner);
        let write = stdin.as_mut().map(|w| {
            w.write_all(&frame)
                .and_then(|()| if flush { w.flush() } else { Ok(()) })
        });
        drop(stdin);
        if !matches!(write, Some(Ok(()))) {
            // The pipe is gone — the reader thread will flag the death;
            // the await loop restarts and resubmits this very entry.
            let mut st = lock_state(shared);
            st.alive = false;
            shared.cv.notify_all();
        }
        Ok(seq)
    }

    /// Waits for `seq`'s response, restarting the worker on death or
    /// deadline, bounded by the restart budget.
    fn await_seq(&self, shared: &Arc<WorkerShared>, seq: u64) -> Result<Response, ServeError> {
        let mut st = lock_state(shared);
        let mut deadline_at = Instant::now() + shared.deadline;
        loop {
            if !st.pending.contains_key(&seq) {
                return Err(ServeError::Unexpected {
                    expected: "a pending entry for this seq",
                });
            }
            if st
                .pending
                .get(&seq)
                .is_some_and(|entry| entry.done.is_some())
            {
                let Some(entry) = st.pending.remove(&seq) else {
                    // Unreachable: checked above under the same lock.
                    return Err(ServeError::Unexpected {
                        expected: "a pending entry for this seq",
                    });
                };
                let Some(response) = entry.done else {
                    return Err(ServeError::Unexpected {
                        expected: "a completed entry",
                    });
                };
                // A successful Open goes on the restart replay script.
                if let (Request::Open { slot, path }, Response::Opened { .. }) =
                    (&entry.request, &response)
                {
                    st.registry.insert(*slot, path.clone());
                }
                if let Response::Error { code, message } = response {
                    return Err(ServeError::Worker { code, message });
                }
                return Ok(response);
            }
            if st.failed {
                st.pending.remove(&seq);
                return Err(ServeError::RestartLimit {
                    worker: shared.index,
                });
            }
            if !st.alive || Instant::now() >= deadline_at {
                // Dead (crash) or wedged (deadline): replace and replay.
                if let Err(e) = shared.restart(&mut st) {
                    st.pending.remove(&seq);
                    return Err(e);
                }
                deadline_at = Instant::now() + shared.deadline;
                continue;
            }
            let wait = deadline_at.saturating_duration_since(Instant::now());
            let (guard, _) = shared
                .cv
                .wait_timeout(st, wait.min(Duration::from_millis(100)))
                .unwrap_or_else(PoisonError::into_inner);
            st = guard;
        }
    }

    fn call(&self, slot: u64, request: Request) -> Result<Response, ServeError> {
        let _permit = self.admission.acquire();
        let shared = self.worker_for(slot);
        let seq = self.submit(shared, request, true)?;
        self.await_seq(shared, seq)
    }

    /// Opens the base snapshot (+ journal) at `path` into `slot` on the
    /// slot's worker; returns the anchor count after replay.
    ///
    /// # Errors
    /// [`ServeError::Worker`] with [`super::protocol::ErrorCode::Open`]
    /// when the worker cannot open the files; transport errors as
    /// elsewhere.
    pub fn open(&self, slot: u64, path: impl Into<String>) -> Result<u64, ServeError> {
        match self.call(
            slot,
            Request::Open {
                slot,
                path: path.into(),
            },
        )? {
            Response::Opened { n_anchors, .. } => Ok(n_anchors),
            _ => Err(ServeError::Unexpected { expected: "Opened" }),
        }
    }

    /// Applies confirmed anchors to `slot`, write-ahead journaled on the
    /// worker; returns `(applied, n_anchors)`.
    ///
    /// # Errors
    /// As for [`Coordinator::open`], with update/journal error codes.
    pub fn update_anchors(
        &self,
        slot: u64,
        edges: Vec<AnchorEdge>,
    ) -> Result<(u64, u64), ServeError> {
        match self.call(slot, Request::UpdateAnchors { slot, edges })? {
            Response::Updated {
                applied, n_anchors, ..
            } => Ok((applied, n_anchors)),
            _ => Err(ServeError::Unexpected {
                expected: "Updated",
            }),
        }
    }

    /// Applies many update batches, grouped per worker and written as
    /// one pipelined burst each — one flush per worker instead of one
    /// round-trip per job. Results come back **in job order**. The whole
    /// batch counts as one admission unit.
    pub fn update_many(
        &self,
        jobs: Vec<(u64, Vec<AnchorEdge>)>,
    ) -> Vec<Result<(u64, u64), ServeError>> {
        let _permit = self.admission.acquire();
        // Submit per worker in job order, flushing once per worker after
        // its last frame.
        let mut last_for_worker: HashMap<usize, usize> = HashMap::new();
        for (i, (slot, _)) in jobs.iter().enumerate() {
            last_for_worker.insert((slot % self.workers.len() as u64) as usize, i);
        }
        let mut seqs: Vec<Result<(usize, u64), ServeError>> = Vec::with_capacity(jobs.len());
        for (i, (slot, edges)) in jobs.into_iter().enumerate() {
            let shared = self.worker_for(slot);
            let flush = last_for_worker.get(&shared.index) == Some(&i);
            let worker_index = shared.index;
            seqs.push(
                self.submit(shared, Request::UpdateAnchors { slot, edges }, flush)
                    .map(|seq| (worker_index, seq)),
            );
        }
        seqs.into_iter()
            .map(|submitted| {
                let (worker_index, seq) = submitted?;
                match self.await_seq(&self.workers[worker_index], seq)? {
                    Response::Updated {
                        applied, n_anchors, ..
                    } => Ok((applied, n_anchors)),
                    _ => Err(ServeError::Unexpected {
                        expected: "Updated",
                    }),
                }
            })
            .collect()
    }

    /// Scores candidate pairs against `slot`'s counts, one score per
    /// pair in order.
    ///
    /// # Errors
    /// As for [`Coordinator::open`].
    pub fn query(&self, slot: u64, pairs: Vec<(u32, u32)>) -> Result<Vec<f64>, ServeError> {
        match self.call(slot, Request::Query { slot, pairs })? {
            Response::Scores(scores) => Ok(scores),
            _ => Err(ServeError::Unexpected { expected: "Scores" }),
        }
    }

    /// Top-`k` alignment candidates for `left` in `slot`, best first.
    ///
    /// # Errors
    /// As for [`Coordinator::open`].
    pub fn align(&self, slot: u64, left: u32, k: u32) -> Result<Vec<(u32, f64)>, ServeError> {
        match self.call(slot, Request::Align { slot, left, k })? {
            Response::Aligned(hits) => Ok(hits),
            _ => Err(ServeError::Unexpected {
                expected: "Aligned",
            }),
        }
    }

    /// Fsyncs `slot`'s journal on its worker (the durability point);
    /// returns the anchor count the checkpoint recorded.
    ///
    /// # Errors
    /// As for [`Coordinator::open`].
    pub fn checkpoint(&self, slot: u64) -> Result<u64, ServeError> {
        match self.call(slot, Request::Checkpoint { slot })? {
            Response::Checkpointed { n_anchors } => Ok(n_anchors),
            _ => Err(ServeError::Unexpected {
                expected: "Checkpointed",
            }),
        }
    }

    /// Shuts every worker down cleanly: `Shutdown` request, wait for the
    /// ack (restart machinery disabled — a worker that dies mid-shutdown
    /// is simply reaped), then reap the process.
    pub fn shutdown(&self) -> Result<(), ServeError> {
        let mut first_err: Option<ServeError> = None;
        for shared in &self.workers {
            let result = self.shutdown_worker(shared);
            if let Err(e) = result {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    fn shutdown_worker(&self, shared: &Arc<WorkerShared>) -> Result<(), ServeError> {
        let mut st = lock_state(shared);
        let Some(mut child) = st.child.take() else {
            return Ok(()); // already down
        };
        let seq = st.next_seq;
        st.next_seq += 1;
        st.pending.insert(
            seq,
            PendingEntry {
                request: Request::Shutdown,
                done: None,
                internal: false,
            },
        );
        drop(st);
        {
            let mut stdin = shared.stdin.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(w) = stdin.as_mut() {
                let frame = encode_request(seq, &Request::Shutdown);
                w.write_all(&frame).and_then(|()| w.flush()).ok();
            }
            // Dropping stdin closes the pipe — the belt-and-braces exit
            // signal for a worker that missed the frame.
            *stdin = None;
        }
        let deadline_at = Instant::now() + shared.deadline;
        let mut st = lock_state(shared);
        let acked = loop {
            if let Some(entry) = st.pending.get(&seq) {
                if entry.done.is_some() {
                    st.pending.remove(&seq);
                    break true;
                }
            } else {
                break false;
            }
            if !st.alive || Instant::now() >= deadline_at {
                st.pending.remove(&seq);
                break false;
            }
            let (guard, _) = shared
                .cv
                .wait_timeout(st, Duration::from_millis(50))
                .unwrap_or_else(PoisonError::into_inner);
            st = guard;
        };
        st.alive = false;
        drop(st);
        if !acked {
            child.kill().ok();
        }
        child.wait().map_err(ServeError::Io)?;
        Ok(())
    }
}

impl Drop for Coordinator {
    fn drop(&mut self) {
        for shared in &self.workers {
            let mut st = lock_state(shared);
            if let Some(mut child) = st.child.take() {
                child.kill().ok();
                child.wait().ok();
            }
        }
    }
}
