//! Fault-injected serving-tier integration (ISSUE 10 acceptance).
//!
//! Real child processes, real pipes: a `SERVE_FAULT` knob makes a
//! worker exit or stall at a chosen request index, and the coordinator
//! must restart it, replay base+journal, and keep answering — with
//! every post-restart answer **bit-equal** to a run that was never
//! interrupted. That is the whole durability claim of the tier: the
//! base+journal pair on disk is the hand-off, and a restarted worker
//! reopens to exactly the session the dead one was serving.

use session::serve::{Coordinator, ServeConfig, ServeError, WorkerSpec};
use session::{snapshot, AnchorEdge, Journal, SessionBuilder};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

static UNIQUE: AtomicU64 = AtomicU64::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let n = UNIQUE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("serve-fault-{}-{tag}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn world() -> datagen::GeneratedWorld {
    datagen::generate(&datagen::presets::tiny(137))
}

/// Writes the scenario's base snapshot (6 training anchors) into `dir`.
fn make_base(dir: &Path) -> PathBuf {
    let w = world();
    let s = SessionBuilder::new(w.left(), w.right())
        .anchors(w.truth().links()[..6].to_vec())
        .count()
        .unwrap();
    let path = dir.join("base.snap");
    snapshot::save(&s, &path).unwrap();
    path
}

fn spec(fault: Option<&str>) -> WorkerSpec {
    let mut spec = WorkerSpec::new(env!("CARGO_BIN_EXE_serve_worker"));
    // Compaction policy is pinned so baseline and fault runs exercise
    // identical journal shapes.
    spec.envs.push(("SERVE_COMPACT".into(), "never".into()));
    if let Some(f) = fault {
        spec.envs.push(("SERVE_FAULT".into(), f.into()));
    }
    spec
}

/// Everything a scenario observes, floats carried as bits so "equal"
/// means bit-equal.
#[derive(Debug, PartialEq, Eq)]
struct Observed {
    n_open: u64,
    n_after_updates: Vec<u64>,
    scores: Vec<u64>,
    aligned: Vec<(u32, u64)>,
    n_checkpoint: u64,
    journal_anchors: usize,
}

/// One scripted serving session against a 1-worker tier: open, two
/// update batches, a full-truth query sweep, an alignment, a
/// checkpoint, a clean shutdown. The request indices seen by the worker
/// are deterministic (0=open, 1=upd, 2=upd, 3=query, 4=align, 5=ckpt),
/// which is what the fault specs below index into.
fn run_scenario(fault: Option<&str>, deadline: Duration) -> (Observed, u32) {
    let dir = temp_dir(fault.unwrap_or("baseline").replace(':', "-").as_str());
    let base = make_base(&dir);
    let w = world();
    let links = w.truth().links();
    let pairs: Vec<(u32, u32)> = links.iter().map(|l| (l.left.0, l.right.0)).collect();
    let batches: [Vec<AnchorEdge>; 2] = [links[6..8].to_vec(), links[8..10].to_vec()];

    let coordinator = Coordinator::spawn(
        spec(fault),
        ServeConfig {
            workers: 1,
            max_in_flight: 8,
            deadline,
            restart_limit: 3,
        },
    )
    .unwrap();

    let n_open = coordinator.open(0, base.display().to_string()).unwrap();
    let mut n_after_updates = Vec::new();
    for batch in &batches {
        // `applied` is deliberately NOT compared: a resubmitted batch
        // the dead worker already journaled merges 0 new anchors — the
        // visible *state* must match, not the retry bookkeeping.
        let (_applied, n) = coordinator.update_anchors(0, batch.clone()).unwrap();
        n_after_updates.push(n);
    }
    let scores = coordinator.query(0, pairs).unwrap();
    let aligned = coordinator.align(0, links[0].left.0, 5).unwrap();
    let n_checkpoint = coordinator.checkpoint(0).unwrap();
    let restarts = coordinator.restarts(0);
    coordinator.shutdown().unwrap();

    // The worker is gone; the journal on disk is the surviving truth.
    let (replayed, _) = Journal::open(&base).unwrap();
    let observed = Observed {
        n_open,
        n_after_updates,
        scores: scores.iter().map(|s| s.to_bits()).collect(),
        aligned: aligned.iter().map(|&(r, s)| (r, s.to_bits())).collect(),
        n_checkpoint,
        journal_anchors: replayed.n_anchors(),
    };
    std::fs::remove_dir_all(&dir).ok();
    (observed, restarts)
}

#[test]
fn baseline_runs_without_restarts() {
    let (observed, restarts) = run_scenario(None, Duration::from_secs(10));
    assert_eq!(restarts, 0, "no fault, no restarts");
    assert!(observed.n_after_updates[1] >= observed.n_after_updates[0]);
    assert_eq!(
        observed.journal_anchors as u64, observed.n_after_updates[1],
        "journal replay must land on the served state"
    );
}

/// Worker killed *between* requests (exits before serving request 2 —
/// the second update): the first update is journaled and acked, the
/// crash loses only the process. The restarted worker replays
/// base+journal and every later answer is bit-equal to the
/// uninterrupted run.
#[test]
fn crash_between_requests_recovers_bit_equal() {
    let (baseline, _) = run_scenario(None, Duration::from_secs(10));
    let (faulted, restarts) = run_scenario(Some("exit:2"), Duration::from_secs(10));
    assert!(restarts >= 1, "the fault must actually have fired");
    assert_eq!(faulted, baseline);
}

/// Worker killed in the applied-but-unacked window (`exit-after:1`
/// journals the first update, then dies without flushing the ack): the
/// coordinator must resubmit, the worker-side set-union makes the
/// replayed-and-resubmitted batch idempotent, and the final state is
/// still bit-equal.
#[test]
fn crash_after_journal_append_before_ack_recovers_bit_equal() {
    let (baseline, _) = run_scenario(None, Duration::from_secs(10));
    let (faulted, restarts) = run_scenario(Some("exit-after:1"), Duration::from_secs(10));
    assert!(restarts >= 1, "the fault must actually have fired");
    assert_eq!(faulted, baseline);
}

/// Worker wedged (stalls forever before serving request 3 — the
/// query): the per-request deadline declares it dead, the coordinator
/// replaces it, and the answers are still bit-equal.
#[test]
fn stall_is_deadline_killed_and_recovers_bit_equal() {
    let (baseline, _) = run_scenario(None, Duration::from_secs(10));
    let (faulted, restarts) = run_scenario(Some("stall:3"), Duration::from_millis(1500));
    assert!(restarts >= 1, "the deadline must have fired");
    assert_eq!(faulted, baseline);
}

#[test]
fn spawning_a_missing_worker_binary_is_a_typed_error() {
    let result = Coordinator::spawn(
        WorkerSpec::new("/no/such/worker-binary"),
        ServeConfig {
            workers: 1,
            ..Default::default()
        },
    );
    assert!(matches!(result, Err(ServeError::Spawn(_))));
}
