//! Acceptance tests for the session-driven active loop: with a budget of
//! ≥ 20 queries, the catalog is fully counted **exactly once** (at session
//! build); every subsequent round flows through `update_anchors`, and the
//! delta path is bit-identical to recounting from scratch every round.

use activeiter::query::RandomQuery;
use activeiter::{ModelConfig, VecOracle};
use hetnet::UserId;
use session::{RecountPolicy, SessionBuilder};

struct Problem {
    world: datagen::GeneratedWorld,
    candidates: Vec<(UserId, UserId)>,
    truth: Vec<bool>,
    labeled: Vec<usize>,
}

/// All ground-truth anchors as positives plus two rings of mismatched
/// pairs as negatives; the first 8 positives are labeled.
fn problem(seed: u64) -> Problem {
    let world = datagen::generate(&datagen::presets::tiny(seed));
    let links = world.truth().links().to_vec();
    let mut candidates: Vec<(UserId, UserId)> = links.iter().map(|l| (l.left, l.right)).collect();
    let mut truth = vec![true; candidates.len()];
    for shift in [1usize, 2] {
        for (a, b) in links.iter().zip(links.iter().cycle().skip(shift)) {
            candidates.push((a.left, b.right));
            truth.push(false);
        }
    }
    Problem {
        world,
        candidates,
        truth,
        labeled: (0..8).collect(),
    }
}

fn run(p: &Problem, policy: RecountPolicy) -> (session::ActiveRunReport, metadiagram::DeltaStats) {
    let train: Vec<_> = p
        .labeled
        .iter()
        .map(|&i| p.world.truth().links()[i])
        .collect();
    let session = SessionBuilder::new(p.world.left(), p.world.right())
        .anchors(train)
        .count()
        .expect("generated networks share attribute universes")
        .featurize(p.candidates.clone());
    let config = ModelConfig {
        budget: 20,
        ..Default::default()
    };
    let mut strategy = RandomQuery::new(99);
    let oracle = VecOracle::new(p.truth.clone());
    let (fitted, report) = session
        .run_active(p.labeled.clone(), &oracle, &mut strategy, &config, policy)
        .expect("candidates live in the networks' universe");
    let stats = fitted.stats();
    (report, stats)
}

fn f1(labels: &[f64], truth: &[bool]) -> f64 {
    let (mut tp, mut f_p, mut f_n) = (0.0, 0.0, 0.0);
    for (&l, &t) in labels.iter().zip(truth) {
        match (l == 1.0, t) {
            (true, true) => tp += 1.0,
            (true, false) => f_p += 1.0,
            (false, true) => f_n += 1.0,
            (false, false) => {}
        }
    }
    2.0 * tp / (2.0 * tp + f_p + f_n)
}

#[test]
fn delta_loop_counts_once_and_matches_full_recount_bit_for_bit() {
    let p = problem(41);
    let (delta_run, delta_stats) = run(&p, RecountPolicy::Delta);
    let (full_run, full_stats) = run(&p, RecountPolicy::FullEachRound);

    // Budget ≥ 20 actually spent across multiple rounds.
    assert_eq!(delta_run.fit.queried.len(), 20, "budget fully consumed");
    assert!(delta_run.rounds.len() >= 4, "batch 5 → at least 4 rounds");
    let confirming_rounds = delta_run
        .rounds
        .iter()
        .filter(|r| r.anchors_applied > 0)
        .count();
    assert!(confirming_rounds >= 1, "some positives must be confirmed");

    // The tentpole guarantee: full catalog counting happened exactly once
    // for the delta loop — every later round went through update_anchors.
    assert_eq!(delta_stats.full_counts, 1);
    assert_eq!(delta_stats.delta_updates, confirming_rounds);
    // The reference loop recounted every confirming round instead.
    assert_eq!(full_stats.full_counts, 1 + confirming_rounds);
    assert_eq!(full_stats.delta_updates, 0);
    assert_eq!(
        delta_stats.anchors_applied, full_stats.anchors_applied,
        "both loops merged the same anchors"
    );

    // Bit-identical models: labels, scores, query trajectory — hence F1.
    assert_eq!(delta_run.fit.queried, full_run.fit.queried);
    assert_eq!(delta_run.fit.labels, full_run.fit.labels);
    assert_eq!(delta_run.fit.scores, full_run.fit.scores);
    assert_eq!(delta_run.fit.weights, full_run.fit.weights);
    let (df1, ff1) = (
        f1(&delta_run.fit.labels, &p.truth),
        f1(&full_run.fit.labels, &p.truth),
    );
    assert_eq!(df1, ff1, "F1 must be bit-identical");
    assert!(df1 > 0.0, "the fit should find something");
    assert_eq!(
        delta_run.total_anchors_applied(),
        full_run.total_anchors_applied()
    );
}

#[test]
fn session_loop_is_deterministic_under_seed() {
    let p = problem(43);
    let (a, _) = run(&p, RecountPolicy::Delta);
    let (b, _) = run(&p, RecountPolicy::Delta);
    assert_eq!(a.fit.labels, b.fit.labels);
    assert_eq!(a.fit.queried, b.fit.queried);
    // Round bookkeeping is deterministic apart from wall-clock.
    assert_eq!(a.rounds.len(), b.rounds.len());
    for (ra, rb) in a.rounds.iter().zip(b.rounds.iter()) {
        assert_eq!(
            (ra.queried, ra.confirmed, ra.anchors_applied),
            (rb.queried, rb.confirmed, rb.anchors_applied)
        );
    }
}

#[test]
fn feature_refresh_feeds_back_into_later_rounds() {
    // The refreshed features must actually differ from the static-feature
    // fit: confirmed anchors strengthen P1–P4 signals mid-loop.
    let p = problem(47);
    let (run_report, _) = run(&p, RecountPolicy::Delta);
    let train: Vec<_> = p
        .labeled
        .iter()
        .map(|&i| p.world.truth().links()[i])
        .collect();
    let session = SessionBuilder::new(p.world.left(), p.world.right())
        .anchors(train)
        .count()
        .unwrap()
        .featurize(p.candidates.clone());
    let config = ModelConfig {
        budget: 20,
        ..Default::default()
    };
    let mut strategy = RandomQuery::new(99);
    let static_fit = session
        .fit(
            p.labeled.clone(),
            &VecOracle::new(p.truth.clone()),
            &config,
            &mut strategy,
        )
        .into_report();
    // Same query trajectory start, but the refreshed loop re-scores with
    // updated features — the score vectors must diverge somewhere.
    assert_ne!(
        run_report.fit.scores, static_fit.scores,
        "anchor feedback had no effect on the features"
    );
}
