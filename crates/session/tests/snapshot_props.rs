//! Snapshot round-trip and corruption properties.
//!
//! The contract under test (ISSUE 5 acceptance): a `Counted` session
//! saved to disk and reopened "in a fresh process" — modeled here as a
//! byte-level round trip through the full file codec, which is exactly
//! what a fresh process would read — produces **bit-identical**
//! `update_anchors` / `run_active` results, without ever recounting; and
//! a snapshot that was truncated or bit-flipped must refuse to open, not
//! mis-open.

use activeiter::query::ConflictQuery;
use activeiter::{ModelConfig, VecOracle};
use proptest::prelude::*;
use session::{snapshot, RecountPolicy, SessionBuilder};

fn world(seed: u64) -> datagen::GeneratedWorld {
    datagen::generate(&datagen::presets::tiny(seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// save → open → update_anchors, against the never-persisted twin:
    /// every count matrix, margin, proximity and feature entry identical
    /// to the last bit, across random worlds, training splits and update
    /// batch shapes.
    #[test]
    fn reopened_sessions_update_bit_equal_to_live_ones(
        seed in 0u64..500,
        n_train in 5usize..12,
        batch in 1usize..5,
    ) {
        let w = world(seed);
        let links = w.truth().links();
        let train = links[..n_train].to_vec();
        let extra: Vec<_> = links[n_train..n_train + 8].to_vec();
        let candidates: Vec<_> = w.truth().iter().map(|l| (l.left, l.right)).collect();

        let live = SessionBuilder::new(w.left(), w.right())
            .anchors(train)
            .count()
            .unwrap();
        let bytes = snapshot::to_bytes(&live);
        let reopened = snapshot::from_bytes(&bytes).unwrap();

        let mut live = live.featurize(candidates.clone());
        let mut reopened = reopened.featurize(candidates);
        for chunk in extra.chunks(batch) {
            prop_assert_eq!(
                live.update_anchors(chunk).unwrap(),
                reopened.update_anchors(chunk).unwrap()
            );
        }
        prop_assert_eq!(live.features().x.data(), reopened.features().x.data());
        for i in 0..live.catalog().len() {
            prop_assert_eq!(live.proximity_of(i), reopened.proximity_of(i), "prox {}", i);
            prop_assert_eq!(live.count_of(i), reopened.count_of(i), "count {}", i);
        }
        // The reopened session resumed without paying a second full count.
        prop_assert_eq!(live.stats(), reopened.stats());
        prop_assert_eq!(reopened.stats().full_counts, 1);
    }

    /// Any single bit flip anywhere in the file must make `open` fail —
    /// magic, version, table, and payload corruption all refuse, never
    /// mis-open (CRC-32 catches all single-bit errors; the header fields
    /// fail their own validation).
    #[test]
    fn single_bit_flips_never_mis_open(seed in 0u64..500, which in 0usize..4096) {
        let w = world(seed);
        let counted = SessionBuilder::new(w.left(), w.right())
            .anchors(w.truth().links()[..8].to_vec())
            .count()
            .unwrap();
        let bytes = snapshot::to_bytes(&counted);
        let mut corrupt = bytes.clone();
        // Spread the 4096 sampled positions across the WHOLE file (a
        // snapshot is ~1M bits, so a bare `which % total` would only
        // ever touch the first 4096 bits — the header).
        let total_bits = corrupt.len() * 8;
        let pos = (which * (total_bits / 4096 + 1)) % total_bits;
        corrupt[pos / 8] ^= 1 << (pos % 8);
        prop_assert!(
            snapshot::from_bytes(&corrupt).is_err(),
            "bit {} flipped and the snapshot still opened",
            pos
        );
    }
}

/// `run_active` from a reopened session is bit-identical to the live
/// session's run: same labels, scores, weights, query sequence, and the
/// same per-round anchor bookkeeping (timings excluded — wall-clock is
/// not part of the contract).
#[test]
fn reopened_sessions_run_active_bit_equal() {
    let w = world(77);
    let train = w.truth().links()[..10].to_vec();
    let candidates: Vec<_> = w.truth().iter().map(|l| (l.left, l.right)).collect();
    let truth = vec![true; candidates.len()];
    let config = ModelConfig {
        budget: 12,
        ..Default::default()
    };

    let live = SessionBuilder::new(w.left(), w.right())
        .anchors(train)
        .count()
        .unwrap();
    let reopened = snapshot::from_bytes(&snapshot::to_bytes(&live)).unwrap();

    let run = |counted: session::AlignmentSession<session::Counted>| {
        let mut strategy = ConflictQuery::new(config.similar_tau, config.margin_delta);
        counted
            .featurize(candidates.clone())
            .run_active(
                (0..10).collect(),
                &VecOracle::new(truth.clone()),
                &mut strategy,
                &config,
                RecountPolicy::Delta,
            )
            .unwrap()
    };
    let (fitted_live, run_live) = run(live);
    let (fitted_reopened, run_reopened) = run(reopened);

    assert_eq!(run_live.fit.labels, run_reopened.fit.labels);
    assert_eq!(run_live.fit.scores, run_reopened.fit.scores);
    assert_eq!(run_live.fit.weights, run_reopened.fit.weights);
    assert_eq!(run_live.fit.queried, run_reopened.fit.queried);
    assert_eq!(run_live.rounds.len(), run_reopened.rounds.len());
    for (a, b) in run_live.rounds.iter().zip(run_reopened.rounds.iter()) {
        assert_eq!(a.queried, b.queried);
        assert_eq!(a.confirmed, b.confirmed);
        assert_eq!(a.anchors_applied, b.anchors_applied);
    }
    // Both counted the catalog exactly once — the reopened one at its
    // original build, before it was persisted.
    assert_eq!(fitted_live.stats().full_counts, 1);
    assert_eq!(fitted_reopened.stats().full_counts, 1);
    assert_eq!(
        fitted_live.features().x.data(),
        fitted_reopened.features().x.data()
    );
}

/// Truncation at any point must error. Every cut of the header and
/// section table is tried exactly; payload cuts are sampled.
#[test]
fn truncated_snapshots_never_mis_open() {
    let w = world(41);
    let counted = SessionBuilder::new(w.left(), w.right())
        .anchors(w.truth().links()[..8].to_vec())
        .count()
        .unwrap();
    let bytes = snapshot::to_bytes(&counted);
    let header_and_table = 20 + 2 * 24;
    for cut in 0..header_and_table.min(bytes.len()) {
        assert!(
            snapshot::from_bytes(&bytes[..cut]).is_err(),
            "header cut at {cut} opened"
        );
    }
    let step = ((bytes.len() - header_and_table) / 211).max(1);
    for cut in (header_and_table..bytes.len()).step_by(step) {
        assert!(
            snapshot::from_bytes(&bytes[..cut]).is_err(),
            "payload cut at {cut} opened"
        );
    }
    // The untruncated bytes do open (the sweep above is meaningful).
    assert!(snapshot::from_bytes(&bytes).is_ok());
}

/// The version policy: a snapshot from a different format version is
/// refused with the typed error, not parsed approximately.
#[test]
fn unsupported_versions_are_refused() {
    let w = world(43);
    let counted = SessionBuilder::new(w.left(), w.right())
        .anchors(w.truth().links()[..6].to_vec())
        .count()
        .unwrap();
    let mut bytes = snapshot::to_bytes(&counted);
    // The version field sits right after the 8-byte magic.
    bytes[8] = 2;
    match snapshot::from_bytes(&bytes) {
        Err(session::SnapshotError::UnsupportedVersion { found, supported }) => {
            assert_eq!(found, 2);
            assert_eq!(supported, snapshot::FORMAT_VERSION);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
    // And a non-snapshot file is refused as such.
    assert!(matches!(
        snapshot::from_bytes(b"definitely not a snapshot"),
        Err(session::SnapshotError::BadMagic)
    ));
}

/// save/open through the filesystem: the docs' quickstart path, plus the
/// atomic-rename guarantee that no `.tmp` debris survives a save.
#[test]
fn save_and_open_round_trip_through_a_file() {
    let w = world(47);
    let counted = SessionBuilder::new(w.left(), w.right())
        .anchors(w.truth().links()[..9].to_vec())
        .count()
        .unwrap();
    let dir = std::env::temp_dir();
    let path = dir.join(format!("snapshot-props-{}.snap", std::process::id()));
    snapshot::save(&counted, &path).unwrap();
    let reopened = snapshot::open(&path).unwrap();
    assert_eq!(reopened.n_anchors(), counted.n_anchors());
    assert_eq!(reopened.catalog().len(), counted.catalog().len());
    for i in 0..counted.catalog().len() {
        assert_eq!(reopened.count_of(i), counted.count_of(i));
    }
    // Saves stage through uniquely named `<path>.tmp.<pid>-<n>` siblings;
    // none may survive a completed save.
    let name = path.file_name().unwrap().to_string_lossy().into_owned();
    let debris: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with(&format!("{name}.tmp")))
        .collect();
    assert!(debris.is_empty(), "save left temp files behind: {debris:?}");
    std::fs::remove_file(&path).ok();
}
