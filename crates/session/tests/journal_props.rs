//! Journal durability properties.
//!
//! The contract under test (ISSUE 9 acceptance): a session reopened
//! through base-snapshot + journal replay is **bit-equal** to one
//! reopened from a freshly saved monolithic snapshot; corruption either
//! rewinds to a state that actually existed (torn tail) or refuses with
//! a typed error — never a silently-wrong session; and a crash at any
//! point of the append/compact protocol recovers cleanly.

use proptest::prelude::*;
use serde::bin::{crc32, Writer};
use session::{snapshot, Journal, JournalError, SessionBuilder};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static UNIQUE: AtomicU64 = AtomicU64::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let n = UNIQUE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("journal-props-{}-{tag}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn world(seed: u64) -> datagen::GeneratedWorld {
    datagen::generate(&datagen::presets::tiny(seed))
}

fn counted(w: &datagen::GeneratedWorld, n: usize) -> session::AlignmentSession<session::Counted> {
    SessionBuilder::new(w.left(), w.right())
        .anchors(w.truth().links()[..n].to_vec())
        .count()
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// create → append/apply → checkpoint → open replays to the exact
    /// bytes of the live session AND of a monolithic save→open of the
    /// same state; compacting and reopening stays bit-equal.
    #[test]
    fn journal_replay_is_bit_equal_to_monolithic_save(
        seed in 0u64..500,
        n_train in 5usize..10,
        batch in 1usize..4,
    ) {
        let w = world(seed);
        let links = w.truth().links();
        let mut live = counted(&w, n_train);
        let extra = links[n_train..n_train + 8].to_vec();

        let dir = temp_dir("replay");
        let base = dir.join("s.snap");
        let mut journal = Journal::create(&base, &snapshot::to_bytes(&live)).unwrap();
        for chunk in extra.chunks(batch) {
            // Write-ahead order: journal first, memory second.
            journal.append(chunk).unwrap();
            live.update_anchors(chunk).unwrap();
        }
        journal.checkpoint(live.n_anchors()).unwrap();
        drop(journal);

        let (replayed, j) = Journal::open(&base).unwrap();
        prop_assert_eq!(snapshot::to_bytes(&replayed), snapshot::to_bytes(&live));
        prop_assert_eq!(j.delta_records() as usize, extra.chunks(batch).count());
        drop(j);

        // The monolithic twin of the same state opens to the same bytes.
        let mono = dir.join("mono.snap");
        snapshot::save(&live, &mono).unwrap();
        let mono_open = snapshot::open(&mono).unwrap();
        prop_assert_eq!(snapshot::to_bytes(&mono_open), snapshot::to_bytes(&live));

        // Compaction folds the journal into the base with no state drift.
        let (compact_me, mut j) = Journal::open(&base).unwrap();
        j.compact(&snapshot::to_bytes(&compact_me)).unwrap();
        prop_assert_eq!(j.delta_records(), 0);
        drop(j);
        let (reopened, j) = Journal::open(&base).unwrap();
        prop_assert_eq!(snapshot::to_bytes(&reopened), snapshot::to_bytes(&live));
        prop_assert_eq!(j.delta_records(), 0);
        drop(j);

        std::fs::remove_dir_all(&dir).ok();
    }

    /// Any single bit flip in the journal file either refuses with a
    /// typed error or rewinds replay to a prefix state that actually
    /// existed — never a state that never was.
    #[test]
    fn journal_bit_flips_skip_or_refuse_cleanly(seed in 0u64..200, which in 0usize..2048) {
        let w = world(seed);
        let links = w.truth().links();
        let mut live = counted(&w, 6);
        let b1 = links[6..9].to_vec();
        let b2 = links[9..12].to_vec();

        let dir = temp_dir("flip");
        let base = dir.join("s.snap");
        let s0 = snapshot::to_bytes(&live);
        let mut j = Journal::create(&base, &s0).unwrap();
        j.append(&b1).unwrap();
        live.update_anchors(&b1).unwrap();
        let s1 = snapshot::to_bytes(&live);
        j.append(&b2).unwrap();
        live.update_anchors(&b2).unwrap();
        let s2 = snapshot::to_bytes(&live);
        j.checkpoint(live.n_anchors()).unwrap();
        drop(j);

        let jpath = Journal::path_for(&base);
        let mut bytes = std::fs::read(&jpath).unwrap();
        // Spread the sampled positions across the whole file, like the
        // snapshot bit-flip sweep.
        let total_bits = bytes.len() * 8;
        let pos = (which * (total_bits / 2048 + 1)) % total_bits;
        bytes[pos / 8] ^= 1 << (pos % 8);
        std::fs::write(&jpath, &bytes).unwrap();

        match Journal::open(&base) {
            Err(_) => {} // a typed refusal is always acceptable
            Ok((session, _)) => {
                let got = snapshot::to_bytes(&session);
                prop_assert!(
                    got == s0 || got == s1 || got == s2,
                    "bit {} flipped and replay produced a state that never existed",
                    pos
                );
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// A cut at EVERY byte of the last record is a torn tail: the open
/// succeeds, replays exactly the intact prefix, and truncates the file
/// back to it (so the next open does no repair work).
#[test]
fn torn_tail_truncation_sweep() {
    let w = world(83);
    let links = w.truth().links();
    let mut live = counted(&w, 6);
    let b1 = links[6..9].to_vec();
    let b2 = links[9..13].to_vec();

    let dir = temp_dir("torn");
    let base = dir.join("s.snap");
    let mut j = Journal::create(&base, &snapshot::to_bytes(&live)).unwrap();
    j.append(&b1).unwrap();
    live.update_anchors(&b1).unwrap();
    let prefix_len = j.journal_bytes();
    let s1 = snapshot::to_bytes(&live);
    j.append(&b2).unwrap();
    drop(j);

    let jpath = Journal::path_for(&base);
    let full = std::fs::read(&jpath).unwrap();
    assert!(
        full.len() as u64 > prefix_len,
        "fixture must have a last record"
    );
    for cut in prefix_len as usize..full.len() {
        std::fs::write(&jpath, &full[..cut]).unwrap();
        let (session, j) = Journal::open(&base).unwrap_or_else(|e| panic!("cut {cut}: {e}"));
        assert_eq!(snapshot::to_bytes(&session), s1, "cut {cut}");
        assert_eq!(j.delta_records(), 1, "cut {cut}");
        drop(j);
        assert_eq!(
            std::fs::metadata(&jpath).unwrap().len(),
            prefix_len,
            "cut {cut}: torn tail must be truncated back to the intact prefix"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Hand-build the compaction intent marker exactly as the journal
/// writes it: `len | crc | (kind=3, new_base_len u64, new_base_crc u32)`.
fn compacted_frame(base_len: u64, base_crc: u32) -> Vec<u8> {
    let mut p = Writer::new();
    p.u8(3);
    p.u64(base_len);
    p.u32(base_crc);
    let payload = p.into_bytes();
    let mut w = Writer::new();
    w.u32(payload.len() as u32);
    w.u32(crc32(&payload));
    w.bytes(&payload);
    w.into_bytes()
}

/// Both crash windows of the compaction protocol recover, and a journal
/// next to a foreign base without the intent marker refuses.
#[test]
fn crash_between_append_and_compact_recovers() {
    let w = world(89);
    let links = w.truth().links();
    let mut live = counted(&w, 6);
    let b1 = links[6..10].to_vec();

    let dir = temp_dir("crash");
    let base = dir.join("s.snap");
    let base0 = snapshot::to_bytes(&live);
    let mut j = Journal::create(&base, &base0).unwrap();
    j.append(&b1).unwrap();
    live.update_anchors(&b1).unwrap();
    drop(j);
    let journal_pre = std::fs::read(Journal::path_for(&base)).unwrap();
    // The base a compaction of this state would publish.
    let s1 = snapshot::to_bytes(&live);
    let (s1_len, s1_crc) = (s1.len() as u64, crc32(&s1));
    let mut journal_with_marker = journal_pre.clone();
    journal_with_marker.extend_from_slice(&compacted_frame(s1_len, s1_crc));

    // Window A: crash after the durable intent marker, before the new
    // base lands. Old base + old journal + marker naming a base that is
    // not on disk: the marker is inert, the deltas replay.
    let a = temp_dir("crash-a");
    let abase = a.join("s.snap");
    std::fs::write(&abase, &base0).unwrap();
    std::fs::write(Journal::path_for(&abase), &journal_with_marker).unwrap();
    let (sa, ja) = Journal::open(&abase).unwrap();
    assert_eq!(snapshot::to_bytes(&sa), s1);
    assert_eq!(ja.delta_records(), 1);
    drop(ja);

    // Window B: crash after the new base published, before the journal
    // swap. New base + old journal whose trailing marker names exactly
    // this base: recognized as a completed compaction, journal discarded.
    let b = temp_dir("crash-b");
    let bbase = b.join("s.snap");
    std::fs::write(&bbase, &s1).unwrap();
    std::fs::write(Journal::path_for(&bbase), &journal_with_marker).unwrap();
    let (sb, jb) = Journal::open(&bbase).unwrap();
    assert_eq!(snapshot::to_bytes(&sb), s1);
    assert_eq!(jb.delta_records(), 0);
    assert!(
        jb.journal_bytes() < journal_with_marker.len() as u64,
        "the stale journal must be replaced by a fresh header-only one"
    );
    assert_eq!(
        std::fs::metadata(Journal::path_for(&bbase)).unwrap().len(),
        jb.journal_bytes()
    );
    drop(jb);

    // No marker + a foreign base: refuse — replaying those deltas onto
    // the wrong state would corrupt it silently.
    let c = temp_dir("crash-c");
    let cbase = c.join("s.snap");
    std::fs::write(&cbase, &s1).unwrap();
    std::fs::write(Journal::path_for(&cbase), &journal_pre).unwrap();
    assert!(matches!(
        Journal::open(&cbase),
        Err(JournalError::BaseMismatch { .. })
    ));

    for d in [dir, a, b, c] {
        std::fs::remove_dir_all(&d).ok();
    }
}

/// The staged compaction protocol (begin → stage → finish) preserves
/// records appended *during* the fold: mid-compaction deltas land after
/// the fold mark and must survive into the fresh journal — and the crash
/// window between the base rename and the journal swap must replay
/// exactly that suffix onto the new base.
#[test]
fn staged_compaction_preserves_mid_fold_appends() {
    let w = world(91);
    let links = w.truth().links();
    let mut live = counted(&w, 6);
    let b1 = links[6..10].to_vec();
    let b2 = links[10..13].to_vec();

    let dir = temp_dir("staged");
    let base = dir.join("s.snap");
    let mut j = Journal::create(&base, &snapshot::to_bytes(&live)).unwrap();
    j.append(&b1).unwrap();
    live.update_anchors(&b1).unwrap();

    // Begin the fold at state s1, then keep appending while the base is
    // (conceptually) being staged off-lock.
    let s1 = snapshot::to_bytes(&live);
    j.begin_compact(&s1).unwrap();
    assert!(j.compaction_pending());
    assert!(
        !j.should_compact(session::CompactionPolicy::EveryN(1)),
        "policy checks must not double-trigger while a fold is pending"
    );
    j.append(&b2).unwrap();
    live.update_anchors(&b2).unwrap();
    let s2 = snapshot::to_bytes(&live);

    // Crash window B': new base published, journal not yet swapped, with
    // records after the marker. Replay must apply only the suffix.
    let bp = temp_dir("staged-crash");
    let bbase = bp.join("s.snap");
    std::fs::write(&bbase, &s1).unwrap();
    std::fs::copy(Journal::path_for(&base), Journal::path_for(&bbase)).unwrap();
    let (sbp, jbp) = Journal::open(&bbase).unwrap();
    assert_eq!(snapshot::to_bytes(&sbp), s2);
    assert_eq!(
        jbp.delta_records(),
        1,
        "only the post-mark delta survives into the rebuilt journal"
    );
    drop(jbp);
    // The rebuilt journal must itself reopen cleanly.
    let (sbp2, _) = Journal::open(&bbase).unwrap();
    assert_eq!(snapshot::to_bytes(&sbp2), s2);

    // Live path: stage + finish. The b2 record must survive the swap.
    let staged = Journal::stage_compacted_base(j.base_path(), &s1).unwrap();
    j.finish_compact(staged).unwrap();
    assert!(!j.compaction_pending());
    assert_eq!(j.delta_records(), 1, "mid-fold append survives the fold");
    drop(j);
    let (reopened, j) = Journal::open(&base).unwrap();
    assert_eq!(snapshot::to_bytes(&reopened), s2);
    assert_eq!(j.delta_records(), 1);
    drop(j);

    // A mismatched staged base is refused and the pending fold survives.
    let (_, mut j) = Journal::open(&base).unwrap();
    let now = snapshot::to_bytes(&reopened);
    j.begin_compact(&now).unwrap();
    let wrong = Journal::stage_compacted_base(j.base_path(), &s1).unwrap();
    assert!(j.finish_compact(wrong).is_err());
    assert!(
        j.compaction_pending(),
        "a bad stage must not clear the fold"
    );
    let right = Journal::stage_compacted_base(j.base_path(), &now).unwrap();
    j.finish_compact(right).unwrap();
    assert_eq!(j.delta_records(), 0);
    drop(j);

    for d in [dir, bp] {
        std::fs::remove_dir_all(&d).ok();
    }
}

/// `snapshot::save` is now a journal-layer wrapper: it must unlink a
/// stale sibling journal, or the next journal-aware open would refuse
/// with `BaseMismatch`.
#[test]
fn monolithic_save_unlinks_a_stale_journal() {
    let w = world(97);
    let links = w.truth().links();
    let mut live = counted(&w, 6);

    let dir = temp_dir("stale");
    let base = dir.join("s.snap");
    let mut j = Journal::create(&base, &snapshot::to_bytes(&live)).unwrap();
    j.append(&links[6..9]).unwrap();
    live.update_anchors(&links[6..9]).unwrap();
    j.checkpoint(live.n_anchors()).unwrap();
    drop(j);

    // A monolithic save over the same path supersedes base AND journal.
    snapshot::save(&live, &base).unwrap();
    assert!(
        !Journal::path_for(&base).exists(),
        "save must unlink the superseded journal"
    );
    let (reopened, j) = Journal::open(&base).unwrap();
    assert_eq!(snapshot::to_bytes(&reopened), snapshot::to_bytes(&live));
    assert_eq!(j.delta_records(), 0);
    drop(j);
    std::fs::remove_dir_all(&dir).ok();
}
