//! Serving-protocol frame codec properties.
//!
//! The contract under test (ISSUE 10 satellite): every request/response
//! variant round-trips through its frame bit-exactly; a torn frame —
//! any strict prefix of a valid stream — means *wait*, never a panic,
//! never an error, never an allocation sized by garbage; and any single
//! flipped bit anywhere in a frame is refused (or leaves the decoder
//! waiting), never silently accepted. The same seam the coordinator and
//! worker use is also driven end-to-end in-process here: `run_worker`
//! over plain `Read`/`Write` buffers, no child process needed.

use hetnet::UserId;
use proptest::prelude::*;
use session::serve::protocol::{
    decode_frame, decode_request, decode_response, encode_request, encode_response, ErrorCode,
    ProtocolError, Request, Response, MAX_FRAME_LEN,
};
use session::serve::worker::{run_worker, Fault, FAULT_EXIT_CODE};
use session::{snapshot, AnchorEdge, Journal, SessionBuilder};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static UNIQUE: AtomicU64 = AtomicU64::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let n = UNIQUE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("serve-proto-{}-{tag}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn edge(l: u32, r: u32) -> AnchorEdge {
    AnchorEdge {
        left: UserId(l),
        right: UserId(r),
    }
}

/// One of every request variant, with non-trivial bodies.
fn request_menu() -> Vec<Request> {
    vec![
        Request::Open {
            slot: 7,
            path: "/tmp/some where/with spaces/base.snap".into(),
        },
        Request::Open {
            slot: 0,
            path: String::new(),
        },
        Request::UpdateAnchors {
            slot: u64::MAX,
            edges: vec![edge(0, 0), edge(u32::MAX, 3), edge(9, u32::MAX)],
        },
        Request::UpdateAnchors {
            slot: 1,
            edges: vec![],
        },
        Request::Query {
            slot: 3,
            pairs: vec![(0, 1), (u32::MAX, u32::MAX), (5, 0)],
        },
        Request::Align {
            slot: 2,
            left: 11,
            k: 4,
        },
        Request::Checkpoint { slot: 42 },
        Request::Shutdown,
    ]
}

/// One of every response variant, including NaN/negative-zero floats —
/// round-tripping must be bit-exact, not just `==`-exact.
fn response_menu() -> Vec<Response> {
    vec![
        Response::Opened {
            slot: 7,
            n_anchors: 19,
        },
        Response::Updated {
            slot: 7,
            applied: 0,
            n_anchors: u64::MAX,
        },
        Response::Scores(vec![0.0, -0.0, 1.5, f64::NAN, f64::INFINITY]),
        Response::Scores(vec![]),
        Response::Aligned(vec![(3, 0.25), (0, -0.0), (u32::MAX, f64::MIN_POSITIVE)]),
        Response::Checkpointed { n_anchors: 4 },
        Response::ShuttingDown,
        Response::Error {
            code: ErrorCode::UnknownSlot,
            message: "slot 9 was never opened — tea ☕ included".into(),
        },
        Response::Error {
            code: ErrorCode::Internal,
            message: String::new(),
        },
        Response::Hello { pid: 12345 },
    ]
}

fn bits_of(r: &Response) -> Vec<u64> {
    match r {
        Response::Scores(s) => s.iter().map(|v| v.to_bits()).collect(),
        Response::Aligned(h) => h.iter().map(|(_, v)| v.to_bits()).collect(),
        _ => Vec::new(),
    }
}

#[test]
fn every_request_variant_round_trips() {
    for (i, request) in request_menu().into_iter().enumerate() {
        let seq = 1 + i as u64 * 17;
        let frame = encode_request(seq, &request);
        let (payload, consumed) = decode_frame(&frame).unwrap().expect("complete frame");
        assert_eq!(consumed, frame.len(), "one frame, fully consumed");
        let (got_seq, got) = decode_request(payload).unwrap();
        assert_eq!(got_seq, seq);
        assert_eq!(got, request);
    }
}

#[test]
fn every_response_variant_round_trips_bit_exactly() {
    for (i, response) in response_menu().into_iter().enumerate() {
        let seq = i as u64;
        let frame = encode_response(seq, &response);
        let (payload, consumed) = decode_frame(&frame).unwrap().expect("complete frame");
        assert_eq!(consumed, frame.len());
        let (got_seq, got) = decode_response(payload).unwrap();
        assert_eq!(got_seq, seq);
        // NaN != NaN, so compare float payloads by bits and the rest by Eq.
        assert_eq!(bits_of(&got), bits_of(&response), "float bits must survive");
        match (&got, &response) {
            (Response::Scores(_), Response::Scores(_)) => {}
            (Response::Aligned(a), Response::Aligned(b)) => {
                let rights: Vec<u32> = a.iter().map(|&(r, _)| r).collect();
                let expect: Vec<u32> = b.iter().map(|&(r, _)| r).collect();
                assert_eq!(rights, expect);
            }
            _ => assert_eq!(got, response),
        }
    }
}

/// Every strict prefix of every frame is "wait", never an error or a
/// panic — a pipe may deliver any byte split it likes.
#[test]
fn torn_frames_wait_per_byte() {
    for request in request_menu() {
        let frame = encode_request(5, &request);
        for cut in 0..frame.len() {
            match decode_frame(&frame[..cut]) {
                Ok(None) => {}
                other => panic!(
                    "prefix of {cut}/{} bytes must wait, got {other:?}",
                    frame.len()
                ),
            }
        }
    }
    for response in response_menu() {
        let frame = encode_response(5, &response);
        for cut in 0..frame.len() {
            match decode_frame(&frame[..cut]) {
                Ok(None) => {}
                other => panic!(
                    "prefix of {cut}/{} bytes must wait, got {other:?}",
                    frame.len()
                ),
            }
        }
    }
}

/// A frame declaring an absurd payload length is refused while it is
/// still just an integer — before any buffering or allocation.
#[test]
fn hostile_length_prefix_is_refused_before_allocation() {
    for declared in [MAX_FRAME_LEN + 1, u32::MAX, 1 << 30] {
        let mut buf = declared.to_le_bytes().to_vec();
        buf.extend_from_slice(&0u32.to_le_bytes());
        assert_eq!(
            decode_frame(&buf),
            Err(ProtocolError::FrameTooLarge { declared }),
            "declared={declared}"
        );
    }
    // At exactly the cap the decoder waits for the payload instead.
    let mut buf = MAX_FRAME_LEN.to_le_bytes().to_vec();
    buf.extend_from_slice(&0u32.to_le_bytes());
    assert_eq!(decode_frame(&buf), Ok(None));
}

/// A payload whose *interior* sequence length claims more elements than
/// the payload holds is refused by the seq_len guard, not trusted into
/// a giant preallocation.
#[test]
fn hostile_interior_lengths_are_refused() {
    // Hand-build an UpdateAnchors payload claiming 2^30 edges.
    let mut p = serde::bin::Writer::new();
    p.u64(1); // seq
    p.u8(2); // REQ_UPDATE
    p.u64(0); // slot
    p.usize(1 << 30); // claimed edge count, no edges follow
    let payload = p.into_bytes();
    let mut w = serde::bin::Writer::new();
    w.u32(payload.len() as u32);
    w.u32(serde::bin::crc32(&payload));
    w.bytes(&payload);
    let framed = w.into_bytes();
    let (payload, _) = decode_frame(&framed).unwrap().expect("frame is intact");
    assert!(
        matches!(decode_request(payload), Err(ProtocolError::Decode(_))),
        "a claimed length beyond the payload must be refused"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any single flipped bit anywhere in a frame is never silently
    /// accepted: the decoder refuses (checksum / too-large) or keeps
    /// waiting — it never yields a payload, matching or not.
    #[test]
    fn single_bit_flips_never_decode(variant in 0usize..8, seq in 0u64..1000) {
        let request = request_menu().swap_remove(variant);
        let frame = encode_request(seq, &request);
        for byte in 0..frame.len() {
            for bit in 0..8u8 {
                let mut damaged = frame.clone();
                damaged[byte] ^= 1 << bit;
                prop_assert!(
                    !matches!(decode_frame(&damaged), Ok(Some(_))),
                    "bit {bit} of byte {byte} flipped and the frame still decoded"
                );
            }
        }
    }

    /// Concatenated frames split off one at a time regardless of how
    /// the stream is chunked.
    #[test]
    fn streams_reassemble_across_arbitrary_chunking(chunk in 1usize..37, seq0 in 0u64..50) {
        let menu = request_menu();
        let mut stream = Vec::new();
        for (i, r) in menu.iter().enumerate() {
            stream.extend_from_slice(&encode_request(seq0 + i as u64, r));
        }
        let mut buf: Vec<u8> = Vec::new();
        let mut decoded = Vec::new();
        for piece in stream.chunks(chunk) {
            buf.extend_from_slice(piece);
            loop {
                let mut consumed = 0;
                match decode_frame(&buf) {
                    Ok(Some((payload, used))) => {
                        decoded.push(decode_request(payload).unwrap());
                        consumed = used;
                    }
                    Ok(None) => {}
                    Err(e) => prop_assert!(false, "valid stream refused: {e}"),
                }
                if consumed == 0 {
                    break;
                }
                buf.drain(..consumed);
            }
        }
        prop_assert_eq!(decoded.len(), menu.len());
        for (i, ((got_seq, got), want)) in decoded.into_iter().zip(menu).enumerate() {
            prop_assert_eq!(got_seq, seq0 + i as u64);
            prop_assert_eq!(got, want);
        }
    }
}

// ---------------------------------------------------------------------
// run_worker driven through its Read/Write seam, no child process.
// ---------------------------------------------------------------------

fn make_base(dir: &std::path::Path) -> (PathBuf, usize) {
    let w = datagen::generate(&datagen::presets::tiny(91));
    let s = SessionBuilder::new(w.left(), w.right())
        .anchors(w.truth().links()[..6].to_vec())
        .count()
        .unwrap();
    let path = dir.join("base.snap");
    snapshot::save(&s, &path).unwrap();
    (path, s.n_anchors())
}

fn drain_responses(bytes: &[u8]) -> Vec<(u64, Response)> {
    let mut out = Vec::new();
    let mut at = 0;
    while let Some((payload, used)) = decode_frame(&bytes[at..]).unwrap() {
        out.push(decode_response(payload).unwrap());
        at += used;
    }
    assert_eq!(at, bytes.len(), "worker output must be whole frames");
    out
}

#[test]
fn worker_serves_a_full_session_over_the_seam() {
    let dir = temp_dir("seam");
    let (base, n0) = make_base(&dir);
    let w = datagen::generate(&datagen::presets::tiny(91));
    let extra = w.truth().links()[6..9].to_vec();

    let mut input = Vec::new();
    input.extend_from_slice(&encode_request(
        1,
        &Request::Open {
            slot: 4,
            path: base.display().to_string(),
        },
    ));
    input.extend_from_slice(&encode_request(
        2,
        &Request::UpdateAnchors {
            slot: 4,
            edges: extra.clone(),
        },
    ));
    input.extend_from_slice(&encode_request(
        3,
        &Request::Query {
            slot: 4,
            pairs: vec![(0, 0), (1, 2), (70_000, 2)],
        },
    ));
    input.extend_from_slice(&encode_request(
        4,
        &Request::Align {
            slot: 4,
            left: 0,
            k: 3,
        },
    ));
    input.extend_from_slice(&encode_request(5, &Request::Checkpoint { slot: 4 }));
    input.extend_from_slice(&encode_request(9, &Request::Shutdown));

    let mut output = Vec::new();
    let code = run_worker(
        &input[..],
        &mut output,
        None,
        session::CompactionPolicy::Never,
    );
    assert_eq!(code, 0, "clean shutdown");

    let responses = drain_responses(&output);
    assert!(
        matches!(responses[0], (0, Response::Hello { .. })),
        "first message is the handshake"
    );
    let n_after = {
        let mut live = snapshot::open(&base).unwrap();
        live.update_anchors(&extra).unwrap();
        live.n_anchors() as u64
    };
    assert_eq!(
        responses[1],
        (
            1,
            Response::Opened {
                slot: 4,
                n_anchors: n0 as u64
            }
        )
    );
    match &responses[2] {
        (
            2,
            Response::Updated {
                slot: 4, n_anchors, ..
            },
        ) => assert_eq!(*n_anchors, n_after),
        other => panic!("expected Updated, got {other:?}"),
    }
    match &responses[3] {
        (3, Response::Scores(scores)) => {
            assert_eq!(scores.len(), 3);
            assert_eq!(scores[2], 0.0, "out-of-range pair scores 0, not an error");
        }
        other => panic!("expected Scores, got {other:?}"),
    }
    assert!(matches!(responses[4], (4, Response::Aligned(_))));
    assert!(matches!(responses[5], (5, Response::Checkpointed { .. })));
    assert_eq!(responses[6], (9, Response::ShuttingDown));

    // The write-ahead journal holds the update even though the worker is
    // gone — the durable hand-off the coordinator's restarts rely on.
    let (replayed, _) = Journal::open(&base).unwrap();
    assert_eq!(replayed.n_anchors() as u64, n_after);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn worker_tears_down_on_corrupt_stream_with_a_typed_error() {
    let mut input = encode_request(1, &Request::Checkpoint { slot: 0 });
    let last = input.len() - 1;
    input[last] ^= 0x40; // payload bit damage → CRC refusal

    let mut output = Vec::new();
    let code = run_worker(
        &input[..],
        &mut output,
        None,
        session::CompactionPolicy::Never,
    );
    assert_eq!(code, 2, "protocol corruption is the protocol exit code");
    let responses = drain_responses(&output);
    assert!(matches!(responses[0], (0, Response::Hello { .. })));
    match responses.last().unwrap() {
        (0, Response::Error { code, .. }) => assert_eq!(*code, ErrorCode::BadRequest),
        other => panic!("expected a seq-0 teardown diagnostic, got {other:?}"),
    }
}

#[test]
fn worker_requests_against_unknown_slots_get_typed_errors() {
    let mut input = Vec::new();
    input.extend_from_slice(&encode_request(1, &Request::Checkpoint { slot: 31 }));
    input.extend_from_slice(&encode_request(
        2,
        &Request::Query {
            slot: 31,
            pairs: vec![(0, 0)],
        },
    ));
    input.extend_from_slice(&encode_request(3, &Request::Shutdown));
    let mut output = Vec::new();
    let code = run_worker(
        &input[..],
        &mut output,
        None,
        session::CompactionPolicy::Never,
    );
    assert_eq!(code, 0, "bad requests never kill the worker");
    let responses = drain_responses(&output);
    for seq in [1u64, 2] {
        match &responses[seq as usize] {
            (s, Response::Error { code, .. }) => {
                assert_eq!(*s, seq);
                assert_eq!(*code, ErrorCode::UnknownSlot);
            }
            other => panic!("expected UnknownSlot, got {other:?}"),
        }
    }
}

#[test]
fn worker_exit_fault_fires_at_the_exact_request_index() {
    let mut input = Vec::new();
    input.extend_from_slice(&encode_request(1, &Request::Checkpoint { slot: 0 }));
    input.extend_from_slice(&encode_request(2, &Request::Checkpoint { slot: 0 }));
    input.extend_from_slice(&encode_request(3, &Request::Shutdown));
    let mut output = Vec::new();
    let code = run_worker(
        &input[..],
        &mut output,
        Some(Fault::Exit(1)),
        session::CompactionPolicy::Never,
    );
    assert_eq!(code, FAULT_EXIT_CODE);
    let responses = drain_responses(&output);
    // Hello went out; request 0's answer may have been flushed, request
    // 1 and later must not have been served.
    assert!(responses.iter().all(|(seq, _)| *seq < 2));
}
