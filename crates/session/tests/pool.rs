//! SessionPool integration: open-from-snapshot sharding, per-session
//! staged state, batch updates across the bounded worker pool, and the
//! write-ahead journaling contract.

use session::pool::{PoolError, SessionPool};
use session::{snapshot, CompactionPolicy, Journal, SessionBuilder};
use std::path::PathBuf;

fn world(seed: u64) -> datagen::GeneratedWorld {
    datagen::generate(&datagen::presets::tiny(seed))
}

fn counted(w: &datagen::GeneratedWorld, n: usize) -> session::AlignmentSession<session::Counted> {
    SessionBuilder::new(w.left(), w.right())
        .anchors(w.truth().links()[..n].to_vec())
        .count()
        .unwrap()
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pool-test-{}-{tag}.snap", std::process::id()))
}

#[test]
fn open_many_shards_snapshots_and_preserves_path_order() {
    let w = world(61);
    let paths: Vec<PathBuf> = (0..5)
        .map(|i| {
            let s = counted(&w, 5 + i);
            let p = temp_path(&format!("many-{i}"));
            snapshot::save(&s, &p).unwrap();
            p
        })
        .collect();
    let mut pool = SessionPool::new(3);
    let ids: Vec<_> = pool
        .open_many(&paths)
        .into_iter()
        .collect::<Result<_, _>>()
        .unwrap();
    assert_eq!(pool.len(), 5);
    // Path order ⇒ id order ⇒ anchor counts 5, 6, 7, 8, 9.
    for (i, &id) in ids.iter().enumerate() {
        assert_eq!(id.index(), i);
        assert_eq!(pool.n_anchors(id).unwrap(), 5 + i);
        assert_eq!(pool.stats(id).unwrap().full_counts, 1, "reopen recounted");
    }
    for p in &paths {
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn open_many_reports_bad_paths_without_consuming_slots() {
    let w = world(62);
    let good = temp_path("good");
    snapshot::save(&counted(&w, 6), &good).unwrap();
    let missing = temp_path("never-written");
    let mut pool = SessionPool::new(2);
    let results = pool.open_many(&[good.clone(), missing.clone(), good.clone()]);
    assert!(results[0].is_ok());
    match &results[1] {
        Err(PoolError::OpenSnapshot { path, source }) => {
            assert_eq!(path, &missing, "error must name the offending path");
            assert!(matches!(
                source,
                session::JournalError::Snapshot(session::SnapshotError::Io(_))
            ));
        }
        other => panic!("expected OpenSnapshot error, got {other:?}"),
    }
    assert!(
        results[1]
            .as_ref()
            .unwrap_err()
            .to_string()
            .contains(missing.to_string_lossy().as_ref()),
        "display must include the offending path"
    );
    assert!(results[2].is_ok());
    assert_eq!(pool.len(), 2, "failed open must not consume a slot");
    std::fs::remove_file(&good).ok();
}

#[test]
fn pooled_updates_match_a_standalone_session_bit_for_bit() {
    let w = world(63);
    let extra = w.truth().links()[8..16].to_vec();
    let candidates: Vec<_> = w.truth().iter().map(|l| (l.left, l.right)).collect();

    // Standalone reference.
    let mut reference = counted(&w, 8).featurize(candidates.clone());
    reference.update_anchors(&extra).unwrap();

    // Pooled twin, updated through the batch path.
    let mut pool = SessionPool::new(4);
    let id = pool.insert(counted(&w, 8));
    pool.featurize(id, candidates).unwrap();
    let results = pool.update_many(&[(id, extra)]);
    assert_eq!(*results[0].as_ref().unwrap(), 8);
    pool.with_featurized(id, |s| {
        assert_eq!(s.features().x.data(), reference.features().x.data());
        for i in 0..s.catalog().len() {
            assert_eq!(s.proximity_of(i), reference.proximity_of(i));
        }
    })
    .unwrap();
}

#[test]
fn update_many_is_identical_at_any_worker_budget() {
    let w = world(64);
    let links = w.truth().links();
    let jobs_for = |pool: &mut SessionPool| {
        let a = pool.insert(counted(&w, 6));
        let b = pool.insert(counted(&w, 6));
        let c = pool.insert(counted(&w, 6));
        vec![
            (a, links[6..9].to_vec()),
            (b, links[9..12].to_vec()),
            (c, links[12..15].to_vec()),
            (a, links[9..12].to_vec()), // same session twice: serializes
        ]
    };
    let mut serial = SessionPool::new(1);
    let serial_jobs = jobs_for(&mut serial);
    let serial_results: Vec<usize> = serial
        .update_many(&serial_jobs)
        .into_iter()
        .map(|r| r.unwrap())
        .collect();
    let mut wide = SessionPool::new(8);
    let wide_jobs = jobs_for(&mut wide);
    let wide_results: Vec<usize> = wide
        .update_many(&wide_jobs)
        .into_iter()
        .map(|r| r.unwrap())
        .collect();
    assert_eq!(serial_results, wide_results);
    for id in [serial_jobs[0].0, serial_jobs[1].0, serial_jobs[2].0] {
        let s = serial.stats(id).unwrap();
        let w_ = wide.stats(id).unwrap();
        assert_eq!(s.anchors_applied, w_.anchors_applied);
        assert_eq!(s.full_counts, 1);
        assert_eq!(w_.full_counts, 1);
    }
}

#[test]
fn staged_state_is_tracked_per_slot() {
    let w = world(65);
    let candidates: Vec<_> = w.truth().iter().map(|l| (l.left, l.right)).collect();
    let mut pool = SessionPool::new(2);
    let a = pool.insert(counted(&w, 6));
    let b = pool.insert(counted(&w, 6));
    assert!(!pool.is_featurized(a).unwrap());
    pool.featurize(a, candidates.clone()).unwrap();
    assert!(pool.is_featurized(a).unwrap());
    assert!(!pool.is_featurized(b).unwrap(), "stages are per-slot");
    // Featurizing twice is a stage error, and the slot survives it.
    assert!(matches!(
        pool.featurize(a, candidates),
        Err(PoolError::WrongStage { .. })
    ));
    assert!(pool.is_featurized(a).unwrap());
    // Stage-specific accessors enforce the stage.
    assert!(pool.with_counted(a, |_| ()).is_err());
    assert!(pool.with_counted(b, |_| ()).is_ok());
    assert!(pool.with_featurized(b, |_| ()).is_err());
}

#[test]
fn unknown_ids_and_checkpointing_round_trip() {
    let w = world(66);
    let mut pool = SessionPool::new(2);
    let id = pool.insert(counted(&w, 7));
    // A foreign id (from another pool) is rejected, not conflated.
    let mut other = SessionPool::new(1);
    let foreign = other.insert(counted(&w, 5));
    let _ = foreign;
    assert!(matches!(
        pool.n_anchors(session::pool::SessionId::from_index(99)),
        Err(PoolError::UnknownSession(99))
    ));
    // Checkpoint a pooled session (after featurizing — the counted core
    // is saved from either stage), reopen it elsewhere, states agree.
    let candidates: Vec<_> = w.truth().iter().map(|l| (l.left, l.right)).collect();
    pool.featurize(id, candidates).unwrap();
    pool.update_anchors(id, &w.truth().links()[7..12]).unwrap();
    let path = temp_path("checkpoint");
    pool.save(id, &path).unwrap();
    let reopened = snapshot::open(&path).unwrap();
    assert_eq!(reopened.n_anchors(), pool.n_anchors(id).unwrap());
    assert_eq!(
        reopened.stats().anchors_applied,
        pool.stats(id).unwrap().anchors_applied
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn updates_are_write_ahead_journaled() {
    let w = world(67);
    let links = w.truth().links();
    let path = temp_path("wal");
    let mut pool = SessionPool::new(2);
    let id = pool.insert(counted(&w, 6));
    pool.attach_journal(id, &path).unwrap();

    // The delta record lands in the journal before it applies in memory:
    // with no save/checkpoint at all, a fresh open already replays it.
    pool.update_anchors(id, &links[6..10]).unwrap();
    let n = pool.n_anchors(id).unwrap();
    let (replayed, _) = Journal::open(&path).unwrap();
    assert_eq!(
        replayed.n_anchors(),
        n,
        "update must be journaled before it applies"
    );

    // A batch that fails validation is rejected BEFORE journaling —
    // otherwise a poison record would fail every later replay.
    let before = pool.journal_stats(id).unwrap().unwrap();
    let bad = [hetnet::AnchorLink::new(
        hetnet::UserId(9999),
        hetnet::UserId(0),
    )];
    assert!(matches!(
        pool.update_anchors(id, &bad),
        Err(PoolError::Session(_))
    ));
    assert_eq!(
        pool.journal_stats(id).unwrap().unwrap(),
        before,
        "a rejected batch must leave the journal untouched"
    );
    assert_eq!(pool.n_anchors(id).unwrap(), n);
    let (replayed, _) = Journal::open(&path).unwrap();
    assert_eq!(replayed.n_anchors(), n);

    std::fs::remove_file(&path).ok();
    std::fs::remove_file(Journal::path_for(&path)).ok();
}

#[test]
fn journaled_saves_checkpoint_and_compact_by_policy() {
    let w = world(68);
    let links = w.truth().links();
    let path = temp_path("policy");
    let mut pool = SessionPool::new(1);
    pool.set_compaction(CompactionPolicy::EveryN(2));
    let id = pool.insert(counted(&w, 6));
    pool.attach_journal(id, &path).unwrap();

    // First save: one delta record — below EveryN(2), checkpoint only.
    pool.update_anchors(id, &links[6..8]).unwrap();
    pool.save(id, &path).unwrap();
    let (base_len0, journal_len0, recs0) = pool.journal_stats(id).unwrap().unwrap();
    assert_eq!(
        recs0, 1,
        "below the policy threshold the journal keeps its deltas"
    );
    assert!(journal_len0 > 0);

    // Second save: two delta records — the policy folds the journal (in
    // the background now; flush to observe the folded state).
    pool.update_anchors(id, &links[8..10]).unwrap();
    pool.save(id, &path).unwrap();
    assert!(pool.flush_compactions().is_empty(), "the fold must succeed");
    let (base_len1, journal_len1, recs1) = pool.journal_stats(id).unwrap().unwrap();
    assert_eq!(recs1, 0, "EveryN(2) must compact at the second save");
    assert!(
        journal_len1 < journal_len0,
        "compaction must shrink the journal"
    );
    assert!(base_len1 >= base_len0);

    // The compacted base alone carries the full state.
    let reopened = snapshot::open(&path).unwrap();
    assert_eq!(reopened.n_anchors(), pool.n_anchors(id).unwrap());

    std::fs::remove_file(&path).ok();
    std::fs::remove_file(Journal::path_for(&path)).ok();
}

/// Regression for the inline-compaction gap: a save that triggers the
/// compaction policy must NOT hold the slot lock for the fold's
/// O(session) staging I/O. With the compactor artificially stalled,
/// updates on the same slot must keep completing while the fold is in
/// flight, mid-fold updates must survive the fold, and the folded pair
/// must reopen bit-equal to the live session.
#[test]
fn compaction_runs_in_background_and_never_blocks_updates() {
    let w = world(70);
    let links = w.truth().links();
    let path = temp_path("bg-compact");
    let mut pool = SessionPool::new(2);
    pool.set_compaction(CompactionPolicy::EveryN(1));
    // Stall each fold for 800 ms between staging and finishing — far
    // longer than any update below takes.
    pool.set_compaction_test_stall(800);
    let id = pool.insert(counted(&w, 6));
    pool.attach_journal(id, &path).unwrap();

    pool.update_anchors(id, &links[6..8]).unwrap();
    let save_started = std::time::Instant::now();
    pool.save(id, &path).unwrap();
    let save_took = save_started.elapsed();
    assert_eq!(pool.compaction_backlog(), 1, "the fold must be enqueued");
    assert!(
        save_took < std::time::Duration::from_millis(400),
        "save must return without waiting for the stalled fold (took {save_took:?})"
    );

    // Updates flow while the fold is stalled in the background.
    let update_started = std::time::Instant::now();
    pool.update_anchors(id, &links[8..10]).unwrap();
    pool.update_anchors(id, &links[10..12]).unwrap();
    let updates_took = update_started.elapsed();
    assert!(
        updates_took < std::time::Duration::from_millis(400),
        "updates must not block on the in-flight fold (took {updates_took:?})"
    );

    assert!(pool.flush_compactions().is_empty(), "the fold must succeed");
    pool.set_compaction_test_stall(0);
    let (_, _, recs) = pool.journal_stats(id).unwrap().unwrap();
    assert_eq!(
        recs, 2,
        "the two mid-fold updates must survive the fold as journal suffix records"
    );

    // The folded base + suffix journal reopens bit-equal to the live
    // session.
    let n = pool.n_anchors(id).unwrap();
    let (replayed, _) = Journal::open(&path).unwrap();
    assert_eq!(replayed.n_anchors(), n);

    std::fs::remove_file(&path).ok();
    std::fs::remove_file(Journal::path_for(&path)).ok();
}

#[test]
fn save_many_reports_per_slot_failures() {
    let w = world(69);
    let mut pool = SessionPool::new(2);
    let a = pool.insert(counted(&w, 5));
    let b = pool.insert(counted(&w, 6));
    let good_a = temp_path("sm-a");
    let good_b = temp_path("sm-b");
    let bad = std::env::temp_dir()
        .join(format!("no-such-dir-{}", std::process::id()))
        .join("s.snap");

    let results = pool.save_many(&[(a, bad.clone()), (b, good_b.clone()), (a, good_a.clone())]);
    assert!(
        results[0].is_err(),
        "unwritable path must fail its own slot"
    );
    assert!(results[1].is_ok());
    assert!(
        results[2].is_ok(),
        "one failed save must not poison the other jobs"
    );
    assert_eq!(snapshot::open(&good_a).unwrap().n_anchors(), 5);
    assert_eq!(snapshot::open(&good_b).unwrap().n_anchors(), 6);

    std::fs::remove_file(&good_a).ok();
    std::fs::remove_file(&good_b).ok();
}
