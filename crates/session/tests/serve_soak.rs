//! Concurrency soak for the serving tier (ISSUE 10 satellite).
//!
//! Four client threads hammer a 2-worker tier with interleaved
//! open/update/query/checkpoint traffic through one shared
//! [`Coordinator`]. The tier must not deadlock (the test finishing is
//! the proof), must not lose a single write-ahead update (after
//! shutdown, each slot's journal replays to exactly the state of a
//! local session fed the same ledger — score-bit-equal, not just
//! count-equal), and must keep each client's responses ordered (anchor
//! counts observed by one client never go backwards, and its final
//! checkpoint sees its full ledger).

use session::serve::{Coordinator, ServeConfig, WorkerSpec};
use session::{snapshot, AnchorEdge, Journal, SessionBuilder};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

static UNIQUE: AtomicU64 = AtomicU64::new(0);

const CLIENTS: u64 = 4;
const ROUNDS: usize = 4;

fn temp_dir(tag: &str) -> PathBuf {
    let n = UNIQUE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("serve-soak-{}-{tag}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn world(slot: u64) -> datagen::GeneratedWorld {
    datagen::generate(&datagen::presets::tiny(200 + slot))
}

fn counted(w: &datagen::GeneratedWorld) -> session::AlignmentSession<session::Counted> {
    SessionBuilder::new(w.left(), w.right())
        .anchors(w.truth().links()[..6].to_vec())
        .count()
        .unwrap()
}

/// The ledger for one slot: every edge any client round will send it.
/// Rounds resend cumulative prefixes, so idempotent set-union semantics
/// are exercised under concurrency, but the final set is fixed.
fn ledger(w: &datagen::GeneratedWorld) -> Vec<AnchorEdge> {
    w.truth().links()[6..6 + ROUNDS].to_vec()
}

fn score_sweep(s: &session::AlignmentSession<session::Counted>, pairs: &[(u32, u32)]) -> Vec<u64> {
    let (rows, cols) = s.anchor().shape();
    pairs
        .iter()
        .map(|&(l, r)| {
            let (l, r) = (l as usize, r as usize);
            let score: f64 = if l >= rows || r >= cols {
                0.0
            } else {
                (0..s.catalog().len())
                    .map(|i| s.count_of(i).get(l, r))
                    .sum()
            };
            score.to_bits()
        })
        .collect()
}

#[test]
fn concurrent_clients_never_lose_a_journaled_update() {
    let dir = temp_dir("tier");

    // One base snapshot per slot, from per-slot worlds.
    let mut bases = Vec::new();
    for slot in 0..CLIENTS {
        let base = dir.join(format!("slot-{slot}.snap"));
        snapshot::save(&counted(&world(slot)), &base).unwrap();
        bases.push(base);
    }

    let mut spec = WorkerSpec::new(env!("CARGO_BIN_EXE_serve_worker"));
    spec.envs.push(("SERVE_COMPACT".into(), "never".into()));
    let coordinator = Arc::new(
        Coordinator::spawn(
            spec,
            ServeConfig {
                workers: 2,
                // Tight on purpose: 4 clients contend for 3 admission
                // slots, so the window actually gates under load.
                max_in_flight: 3,
                deadline: Duration::from_secs(30),
                restart_limit: 1,
            },
        )
        .unwrap(),
    );

    for (slot, base) in bases.iter().enumerate() {
        coordinator
            .open(slot as u64, base.display().to_string())
            .unwrap();
    }

    // Warm the tier through the batched path first: one update_many
    // spanning every slot (and both workers), results in job order.
    let first_batch: Vec<(u64, Vec<AnchorEdge>)> = (0..CLIENTS)
        .map(|slot| (slot, ledger(&world(slot))[..1].to_vec()))
        .collect();
    let batched = coordinator.update_many(first_batch);
    assert_eq!(batched.len(), CLIENTS as usize);
    for (slot, result) in batched.iter().enumerate() {
        let (_applied, n) = result.as_ref().unwrap_or_else(|e| {
            panic!("batched update for slot {slot} failed: {e}");
        });
        assert!(*n > 0);
    }

    // Soak: each client owns one slot and interleaves updates (cumulative
    // ledger prefixes), queries, and checkpoints.
    let workers: Vec<_> = (0..CLIENTS)
        .map(|slot| {
            let coordinator = Arc::clone(&coordinator);
            std::thread::spawn(move || {
                let w = world(slot);
                let ledger = ledger(&w);
                let pairs: Vec<(u32, u32)> = ledger.iter().map(|e| (e.left.0, e.right.0)).collect();
                let mut last_n = 0u64;
                for round in 0..ROUNDS {
                    let (_applied, n) = coordinator
                        .update_anchors(slot, ledger[..=round].to_vec())
                        .unwrap();
                    assert!(
                        n >= last_n,
                        "client {slot}: anchors went backwards ({n} < {last_n}) — \
                         responses out of order"
                    );
                    last_n = n;
                    let scores = coordinator.query(slot, pairs.clone()).unwrap();
                    assert_eq!(scores.len(), pairs.len());
                    if round % 2 == 1 {
                        let n_ckpt = coordinator.checkpoint(slot).unwrap();
                        assert!(
                            n_ckpt >= last_n,
                            "checkpoint behind the client's own writes"
                        );
                    }
                }
                let n_final = coordinator.checkpoint(slot).unwrap();
                assert_eq!(
                    n_final, last_n,
                    "client {slot}: final checkpoint must see the full ledger"
                );
            })
        })
        .collect();
    for handle in workers {
        handle.join().expect("a soak client panicked");
    }

    assert_eq!(
        coordinator.restarts(0) + coordinator.restarts(1),
        0,
        "soak traffic alone must never trip a restart"
    );
    coordinator.shutdown().unwrap();

    // The ledger test: every slot's journal replays to exactly the state
    // of a local session fed the same edges — bit-equal scores over the
    // whole truth set, no update lost, none double-applied.
    for slot in 0..CLIENTS {
        let w = world(slot);
        let mut local = counted(&w);
        local.update_anchors(&ledger(&w)).unwrap();

        let (replayed, _) = Journal::open(&bases[slot as usize]).unwrap();
        assert_eq!(
            replayed.n_anchors(),
            local.n_anchors(),
            "slot {slot}: journal replay lost or duplicated updates"
        );
        let all_pairs: Vec<(u32, u32)> = w
            .truth()
            .links()
            .iter()
            .map(|l| (l.left.0, l.right.0))
            .collect();
        assert_eq!(
            score_sweep(&replayed, &all_pairs),
            score_sweep(&local, &all_pairs),
            "slot {slot}: replayed state must be bit-equal to the ledger state"
        );
    }

    std::fs::remove_dir_all(&dir).ok();
}
