//! Property tests of the sharded pipeline.
//!
//! 1. Under the trivial single-partition map, [`ShardedSession`] is
//!    **bit-identical** to a plain [`AlignmentSession`] driven through the
//!    same active loop — at any worker budget.
//! 2. Boundary-ledger anchors survive a `save_dir`/`open_dir` round-trip
//!    and re-enter the stitched result as confirmed links.

use activeiter::driver::ActiveLoop;
use activeiter::query::ConflictQuery;
use activeiter::{FitReport, ModelConfig, Oracle, VecOracle};
use hetnet::partition::PartitionMap;
use hetnet::{AnchorLink, UserId};
use session::sharded::{ShardedConfig, ShardedSession};
use session::SessionBuilder;
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("sharded-test-{}-{tag}", std::process::id()))
}

/// The reference pipeline: one global session, the same manual loop the
/// sharded fit drives per shard.
fn reference_fit(
    world: &datagen::GeneratedWorld,
    anchors: &[AnchorLink],
    candidates: &[(UserId, UserId)],
    labeled_pos: &[usize],
    truth: &[bool],
    config: &ModelConfig,
) -> FitReport {
    let session = SessionBuilder::new(world.left(), world.right())
        .anchors(anchors.to_vec())
        .count()
        .expect("generated networks share attribute universes")
        .featurize(candidates.to_vec());
    let oracle = VecOracle::new(truth.to_vec());
    let mut strategy = ConflictQuery::new(config.similar_tau, config.margin_delta);
    let mut drv = ActiveLoop::new(session.instance(labeled_pos.to_vec()), config.clone());
    loop {
        drv.converge();
        if drv.remaining() == 0 {
            break;
        }
        let selection = drv.select_queries(&mut strategy);
        if selection.is_empty() {
            break;
        }
        for idx in selection {
            drv.apply_answer(idx, oracle.label(idx));
        }
    }
    drv.finish()
}

#[test]
fn trivial_partition_is_bit_identical_to_global_session() {
    let world = datagen::generate(&datagen::presets::tiny(41));
    let truth_links = world.truth().links().to_vec();
    let anchors = truth_links[..8].to_vec();
    let candidates: Vec<_> = truth_links.iter().map(|l| (l.left, l.right)).collect();
    let labeled_pos: Vec<usize> = (0..8).collect();
    let truth = vec![true; candidates.len()];
    let config = ModelConfig {
        budget: 12,
        ..Default::default()
    };

    let reference = reference_fit(&world, &anchors, &candidates, &labeled_pos, &truth, &config);

    for workers in [1usize, 2, 8] {
        let mut sharded = ShardedSession::with_partitions(
            world.left(),
            world.right(),
            PartitionMap::trivial(world.left().n_users()),
            PartitionMap::trivial(world.right().n_users()),
            anchors.clone(),
            &ShardedConfig {
                workers,
                ..Default::default()
            },
        )
        .expect("trivial partitioning always matches");
        assert_eq!(sharded.n_shards(), 1);
        assert!(sharded.boundary_anchors().is_empty());

        let routing = sharded.featurize(candidates.clone()).unwrap();
        assert_eq!(routing.routed, candidates.len());
        assert_eq!(routing.pruned, 0);

        let stitched = sharded
            .fit(&labeled_pos, &VecOracle::new(truth.clone()), &config)
            .unwrap();

        let shard = &stitched.shard_reports[0];
        assert_eq!(
            shard.rows,
            (0..candidates.len()).collect::<Vec<_>>(),
            "single-shard routing must be the identity at {workers} workers"
        );
        assert_eq!(shard.report.labels, reference.labels, "{workers} workers");
        assert_eq!(shard.report.scores, reference.scores, "{workers} workers");
        assert_eq!(shard.report.weights, reference.weights, "{workers} workers");
        assert_eq!(shard.report.queried, reference.queried, "{workers} workers");
        assert_eq!(shard.report.rounds, reference.rounds, "{workers} workers");

        // The stitched links are exactly the reference's predicted
        // positives (no boundary anchors, no conflicts possible against a
        // one-to-one truth set).
        let mut expected: Vec<(UserId, UserId)> = reference
            .labels
            .iter()
            .enumerate()
            .filter(|(_, &l)| l == 1.0)
            .map(|(i, _)| candidates[i])
            .collect();
        expected.sort();
        let got: Vec<(UserId, UserId)> = stitched.links.iter().map(|l| (l.left, l.right)).collect();
        assert_eq!(got, expected, "{workers} workers");
        assert_eq!(stitched.pruned_candidates, 0);
    }
}

#[test]
fn boundary_anchors_survive_save_open_round_trip() {
    let world = datagen::generate(&datagen::presets::tiny(43));
    let n_left = world.left().n_users();
    let n_right = world.right().n_users();
    let truth_links = world.truth().links().to_vec();

    // Left split in half, right left whole: matching pairs one left
    // partition with the right network; the other left partition is
    // unmatched, so every anchor rooted there lands in the boundary
    // ledger.
    let left_assign: Vec<usize> = (0..n_left).map(|u| usize::from(u >= n_left / 2)).collect();
    let left_map = PartitionMap::from_assignment(&left_assign, world.left());
    let right_map = PartitionMap::trivial(n_right);

    // Seven anchors in the lower half, three in the upper: the lower pair
    // wins the (hard-constrained) matching, the upper three become
    // boundary-ledger anchors.
    let mut anchors = truth_links[..7].to_vec();
    anchors.extend_from_slice(&truth_links[truth_links.len() - 3..]);
    let mut sharded = ShardedSession::with_partitions(
        world.left(),
        world.right(),
        left_map,
        right_map,
        anchors.clone(),
        &ShardedConfig::default(),
    )
    .unwrap();
    assert_eq!(sharded.n_shards(), 1);
    assert_eq!(sharded.matching().unmatched_left.len(), 1);
    let expected_boundary: Vec<AnchorLink> = {
        let matched_left = sharded.matching().pairs[0].left;
        anchors
            .iter()
            .copied()
            .filter(|a| sharded.left_partitions().part_of(a.left) != matched_left)
            .collect()
    };
    assert!(
        !expected_boundary.is_empty(),
        "fixture must produce boundary anchors"
    );
    assert_eq!(sharded.boundary_anchors(), expected_boundary.as_slice());

    // More boundary anchors arrive mid-session via update_anchors; a
    // duplicate is skipped.
    let extra = truth_links[10];
    let update = sharded.update_anchors(&[extra, extra]).unwrap();
    let extra_is_boundary =
        sharded.left_partitions().part_of(extra.left) != sharded.matching().pairs[0].left;
    if extra_is_boundary {
        assert_eq!(update.boundary, 1);
    } else {
        assert_eq!(update.applied, 1);
    }

    let dir = temp_dir("roundtrip");
    sharded.save_dir(&dir).unwrap();
    let reopened = ShardedSession::open_dir(&dir, &ShardedConfig::default()).unwrap();

    assert_eq!(reopened.n_shards(), sharded.n_shards());
    assert_eq!(reopened.boundary_anchors(), sharded.boundary_anchors());
    assert_eq!(
        reopened.left_partitions().raw_parts(),
        sharded.left_partitions().raw_parts()
    );
    assert_eq!(
        reopened.right_partitions().raw_parts(),
        sharded.right_partitions().raw_parts()
    );
    assert_eq!(
        reopened.matching().pairs.len(),
        sharded.matching().pairs.len()
    );

    // The reopened ensemble fits, and every boundary anchor re-enters the
    // stitched result as a confirmed link.
    let mut reopened = reopened;
    let candidates: Vec<_> = truth_links.iter().map(|l| (l.left, l.right)).collect();
    let truth = vec![true; candidates.len()];
    let routing = reopened.featurize(candidates.clone()).unwrap();
    assert_eq!(routing.routed + routing.pruned, candidates.len());
    let labeled: Vec<usize> = (0..10).collect();
    let config = ModelConfig {
        budget: 8,
        ..Default::default()
    };
    let stitched = reopened
        .fit(&labeled, &VecOracle::new(truth), &config)
        .unwrap();
    for anchor in reopened.boundary_anchors() {
        let link = stitched
            .links
            .iter()
            .find(|l| l.left == anchor.left && l.right == anchor.right)
            .expect("boundary anchor must appear in the stitched alignment");
        assert!(link.confirmed);
        assert_eq!(link.score, f64::INFINITY);
        assert_eq!(link.shard, None);
    }
    assert_eq!(stitched.pruned_candidates, routing.pruned);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn manifest_v2_reports_journal_lengths_and_v1_still_opens() {
    let world = datagen::generate(&datagen::presets::tiny(53));
    let truth_links = world.truth().links().to_vec();
    let mut sharded = ShardedSession::with_partitions(
        world.left(),
        world.right(),
        PartitionMap::trivial(world.left().n_users()),
        PartitionMap::trivial(world.right().n_users()),
        truth_links[..8].to_vec(),
        &ShardedConfig::default(),
    )
    .unwrap();
    let dir = temp_dir("manifest-v2");

    // First save attaches per-shard journals and writes a v2 manifest.
    sharded.save_dir(&dir).unwrap();
    let info1 = session::manifest_info(&dir).unwrap();
    assert_eq!(info1.version, session::sharded::MANIFEST_VERSION);
    assert_eq!(info1.n_shards, 1);
    assert_eq!(info1.shard_lens.len(), 1);
    assert!(info1.shard_lens[0].0 > 0, "base length must be recorded");
    assert!(info1.shard_lens[0].1 > 0, "journal length must be recorded");

    // A later round persists at journal cost: the base is untouched,
    // only the shard's journal grows.
    sharded.update_anchors(&truth_links[8..12]).unwrap();
    sharded.save_dir(&dir).unwrap();
    let info2 = session::manifest_info(&dir).unwrap();
    assert_eq!(
        info2.shard_lens[0].0, info1.shard_lens[0].0,
        "a journaled save must not rewrite the base"
    );
    assert!(
        info2.shard_lens[0].1 > info1.shard_lens[0].1,
        "a journaled save appends to the journal"
    );

    // Downgrade the manifest to v1 in place: strip the trailing
    // per-shard length table, stamp version 1, recompute the CRC. The
    // ensemble must still open (v1 compatibility), minus the lengths.
    let manifest_path = dir.join(session::sharded::MANIFEST_FILE);
    let bytes = std::fs::read(&manifest_path).unwrap();
    let payload = &bytes[12..bytes.len() - 4];
    let table = 8 + 16 * info2.n_shards;
    let v1_payload = &payload[..payload.len() - table];
    let mut v1 = Vec::new();
    v1.extend_from_slice(&bytes[..8]);
    v1.extend_from_slice(&1u32.to_le_bytes());
    v1.extend_from_slice(v1_payload);
    v1.extend_from_slice(&serde::bin::crc32(v1_payload).to_le_bytes());
    std::fs::write(&manifest_path, &v1).unwrap();

    let info_v1 = session::manifest_info(&dir).unwrap();
    assert_eq!(info_v1.version, 1);
    assert_eq!(info_v1.n_shards, 1);
    assert!(info_v1.shard_lens.is_empty(), "v1 predates the table");
    let reopened = ShardedSession::open_dir(&dir, &ShardedConfig::default()).unwrap();
    assert_eq!(reopened.n_shards(), 1);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn journaled_sharded_round_trip_is_bit_stable() {
    // Save → update → save → open: the reopened ensemble replays the
    // shard journal to the exact state of the live one.
    let world = datagen::generate(&datagen::presets::tiny(59));
    let truth_links = world.truth().links().to_vec();
    let mut sharded = ShardedSession::with_partitions(
        world.left(),
        world.right(),
        PartitionMap::trivial(world.left().n_users()),
        PartitionMap::trivial(world.right().n_users()),
        truth_links[..8].to_vec(),
        &ShardedConfig::default(),
    )
    .unwrap();
    let dir = temp_dir("journaled-roundtrip");
    sharded.save_dir(&dir).unwrap();
    let update = sharded.update_anchors(&truth_links[8..12]).unwrap();
    assert!(update.applied > 0, "trivial partition routes every anchor");
    sharded.save_dir(&dir).unwrap();

    let mut reopened = ShardedSession::open_dir(&dir, &ShardedConfig::default()).unwrap();
    let candidates: Vec<_> = truth_links.iter().map(|l| (l.left, l.right)).collect();
    let truth = vec![true; candidates.len()];
    let config = ModelConfig {
        budget: 8,
        ..Default::default()
    };
    let labeled: Vec<usize> = (0..10).collect();
    sharded.featurize(candidates.clone()).unwrap();
    reopened.featurize(candidates).unwrap();
    let live = sharded
        .fit(&labeled, &VecOracle::new(truth.clone()), &config)
        .unwrap();
    let replayed = reopened
        .fit(&labeled, &VecOracle::new(truth), &config)
        .unwrap();
    assert_eq!(
        live.shard_reports[0].report.labels,
        replayed.shard_reports[0].report.labels
    );
    assert_eq!(
        live.shard_reports[0].report.scores,
        replayed.shard_reports[0].report.scores
    );
    assert_eq!(
        live.shard_reports[0].report.weights,
        replayed.shard_reports[0].report.weights
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn open_dir_rejects_a_corrupt_manifest() {
    let world = datagen::generate(&datagen::presets::tiny(47));
    let sharded = ShardedSession::with_partitions(
        world.left(),
        world.right(),
        PartitionMap::trivial(world.left().n_users()),
        PartitionMap::trivial(world.right().n_users()),
        world.truth().links()[..5].to_vec(),
        &ShardedConfig::default(),
    )
    .unwrap();
    let dir = temp_dir("corrupt");
    sharded.save_dir(&dir).unwrap();
    let manifest = dir.join(session::sharded::MANIFEST_FILE);
    let mut bytes = std::fs::read(&manifest).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xff;
    std::fs::write(&manifest, &bytes).unwrap();
    let err = ShardedSession::open_dir(&dir, &ShardedConfig::default()).unwrap_err();
    assert!(
        matches!(
            err,
            session::sharded::ShardedError::Manifest(session::SnapshotError::Checksum { .. })
        ),
        "corrupting the manifest tail must trip the checksum, got: {err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
